package experiment

import (
	"fmt"

	"voqsim/internal/traffic"
)

// Options tune how the predefined figure sweeps are run without
// changing what they measure. The zero value reproduces the paper's
// setup at a laptop-friendly slot budget.
type Options struct {
	// N is the switch size; zero means the paper's 16.
	N int
	// Slots per point; zero means the engine default (200k). The paper
	// uses 1e6; pass that for the closest reproduction.
	Slots int64
	// Seed is the base seed for the whole figure; zero means 2004 (the
	// paper's year, an arbitrary fixed default).
	Seed uint64
	// Loads overrides the swept effective loads.
	Loads []float64
	// Extended adds the extension baselines (PIM, 2DRR, WBA, LQFMS,
	// ESLIP, no-split FIFOMS) to the roster.
	Extended bool
	// Workers caps sweep parallelism; zero means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 16
	}
	if o.Seed == 0 {
		o.Seed = 2004
	}
	return o
}

func (o Options) algorithms() []Algorithm {
	if o.Extended {
		return AllAlgorithms()
	}
	return PaperAlgorithms()
}

func (o Options) loads(def []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return def
}

// defaultLoads is the effective-load grid shared by the figure sweeps,
// matching the paper's x-axes (0.1 ... 0.95 of output capacity).
var defaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// Fig4 is the Bernoulli-traffic comparison (Figure 4): 16x16 switch,
// Bernoulli arrivals with b = 0.2 (mean fanout 3.2), sweeping p so the
// effective load covers the axis.
func Fig4(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "fig4",
		Title: fmt.Sprintf("Bernoulli traffic, b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// Fig5 is the convergence-rounds comparison (Figure 5): the same
// traffic as Figure 4, FIFOMS versus iSLIP, metric Rounds.
func Fig5(o Options) *Sweep {
	o = o.withDefaults()
	algos := []Algorithm{FIFOMS, ISLIP}
	if o.Extended {
		algos = append(algos, PIM)
	}
	return &Sweep{
		Name:  "fig5",
		Title: fmt.Sprintf("Convergence rounds, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: algos,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// Fig6 is the pure-unicast comparison (Figure 6): uniform traffic with
// maxFanout = 1.
func Fig6(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "fig6",
		Title: fmt.Sprintf("Uniform traffic, maxFanout=1 (unicast), %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 1, n)
		},
	}
}

// Fig7 is the bounded-fanout multicast comparison (Figure 7): uniform
// traffic with maxFanout = 8 (mean fanout 4.5).
func Fig7(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "fig7",
		Title: fmt.Sprintf("Uniform traffic, maxFanout=8, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 8, n)
		},
	}
}

// Fig8 is the bursty-traffic comparison (Figure 8): on/off Markov
// arrivals with b = 0.5 and mean burst length Eon = 16 as in the
// paper, sweeping the off-state length to set the load.
func Fig8(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "fig8",
		Title: fmt.Sprintf("Burst traffic, b=0.5, Eon=16, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BurstAtLoad(load, 0.5, 16, n)
		},
	}
}

// AblationRounds sweeps FIFOMS under Figure 4's traffic with the
// iteration count capped at 1, 2 and 4 rounds against the
// run-to-convergence scheduler (extension experiment).
func AblationRounds(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "ablation-rounds",
		Title: fmt.Sprintf("FIFOMS iteration cap, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMSRounds(1), FIFOMSRounds(2), FIFOMSRounds(4), FIFOMS},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// AblationSplitting compares FIFOMS with its no-fanout-splitting
// variant under Figure 4's traffic (extension experiment backing the
// conclusion's claim that splitting is necessary for high throughput).
func AblationSplitting(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "ablation-splitting",
		Title: fmt.Sprintf("Fanout splitting on/off, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMS, FIFOMSNoSplit},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// AblationCriterion compares the FIFO time-stamp criterion against
// longest-queue-first weighting on the identical multicast VOQ
// structure under Figure 4's traffic (extension experiment isolating
// the paper's core scheduling idea).
func AblationCriterion(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "ablation-criterion",
		Title: fmt.Sprintf("FIFO vs longest-queue criterion, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMS, LQFMS},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// Speedup sweeps CIOQ fabric speedups against the pure input-queued
// FIFOMS switch and the output-queued bound under Figure 4's traffic
// (extension experiment: how much speedup closes the IQ-OQ gap).
func Speedup(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "speedup",
		Title: fmt.Sprintf("CIOQ fabric speedup, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMS, CIOQ(2), CIOQ(4), OQFIFO},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// HotspotTraffic sweeps non-uniform traffic with one output four
// times hotter than the rest (extension experiment: the paper's 100%%
// throughput claim is for uniform traffic only; this probes beyond it).
func HotspotTraffic(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "hotspot",
		Title: fmt.Sprintf("Hotspot traffic, skew 4x, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.HotspotAtLoad(load, 4, n)
		},
	}
}

// Industry compares FIFOMS against the industrial ESLIP scheduler and
// the OQ bound under Figure 4's traffic (extension experiment: how the
// paper's time-stamp coordination compares with ESLIP's shared-pointer
// coordination).
func Industry(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "industry",
		Title: fmt.Sprintf("FIFOMS vs ESLIP, Bernoulli b=0.2, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMS, ESLIP, ISLIP, OQFIFO},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}
}

// Memory sweeps buffer memory in bytes under Figure 7's traffic
// (extension experiment reproducing Section IV.B's space analysis:
// the shared data cell stores one payload per packet where iSLIP's
// copies and OQ's per-queue entries store one per destination).
func Memory(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "memory",
		Title: fmt.Sprintf("Buffer memory, uniform maxFanout=8, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: []Algorithm{FIFOMS, ISLIP, TATRA, OQFIFO},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 8, n)
		},
	}
}

// MixedTraffic sweeps a half-unicast/half-multicast mix (extension
// experiment for the introduction's observation that mixed traffic is
// hard for single-queue multicast schedulers).
func MixedTraffic(o Options) *Sweep {
	o = o.withDefaults()
	return &Sweep{
		Name:  "mixed",
		Title: fmt.Sprintf("Mixed traffic, 50%% multicast, maxFanout=8, %dx%d", o.N, o.N),
		N:     o.N, Slots: o.Slots, Seed: o.Seed, Workers: o.Workers,
		Loads:      o.loads(defaultLoads),
		Algorithms: o.algorithms(),
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.MixedAtLoad(load, 0.5, 8, n)
		},
	}
}

// Figures returns the five paper sweeps keyed by name.
func Figures(o Options) map[string]*Sweep {
	return map[string]*Sweep{
		"fig4": Fig4(o),
		"fig5": Fig5(o),
		"fig6": Fig6(o),
		"fig7": Fig7(o),
		"fig8": Fig8(o),
	}
}

// Extensions returns the extension sweeps keyed by name.
func Extensions(o Options) map[string]*Sweep {
	return map[string]*Sweep{
		"ablation-rounds":    AblationRounds(o),
		"ablation-splitting": AblationSplitting(o),
		"ablation-criterion": AblationCriterion(o),
		"speedup":            Speedup(o),
		"hotspot":            HotspotTraffic(o),
		"memory":             Memory(o),
		"industry":           Industry(o),
		"mixed":              MixedTraffic(o),
	}
}
