package experiment

import (
	"strings"
	"testing"

	"voqsim/internal/traffic"
)

func TestScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep")
	}
	points, err := Scaling(ScalingConfig{
		Sizes: []int{4, 8, 16},
		Load:  0.7,
		Slots: 10_000,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for _, v := range CheckScaling(points) {
		t.Errorf("scaling claim violated: %s", v)
	}
	for _, p := range points {
		if p.MeanRounds < 1 {
			t.Errorf("N=%d: mean rounds %v below 1", p.N, p.MeanRounds)
		}
		if p.TreeSlotPs >= p.SerialSlotPs && p.N > 2 {
			t.Errorf("N=%d: tree latency %v not below serial %v", p.N, p.TreeSlotPs, p.SerialSlotPs)
		}
	}
	out := FormatScaling(points)
	if !strings.Contains(out, "mean rounds") || !strings.Contains(out, "16") {
		t.Fatalf("FormatScaling:\n%s", out)
	}
}

func TestScalingUnreachableLoad(t *testing.T) {
	_, err := Scaling(ScalingConfig{
		Sizes: []int{4},
		Load:  0.9,
		B:     0.1, // needs p = 0.9/(0.1*4) = 2.25 > 1
		Slots: 1000,
	})
	if err == nil {
		t.Fatal("unreachable scaling load accepted")
	}
}

func TestScalingDefaults(t *testing.T) {
	c := ScalingConfig{}.withDefaults()
	if len(c.Sizes) == 0 || c.Load != 0.7 || c.B != 0.2 || c.Slots != 100_000 || c.Seed != 2004 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestSaturationSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs many simulations")
	}
	results, err := Saturation(SaturationConfig{
		N: 16,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 1, n) // pure unicast
		},
		Algorithms: []Algorithm{FIFOMS, TATRA},
		Slots:      15_000,
		Seed:       5,
		Precision:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Algorithm] = r.MaxLoad
	}
	// FIFOMS sustains near-full unicast load; TATRA stalls near the
	// HOL bound (~0.6 for N=16).
	if byName["fifoms"] < 0.9 {
		t.Errorf("fifoms saturation %.2f, want >= 0.9", byName["fifoms"])
	}
	if byName["tatra"] < 0.45 || byName["tatra"] > 0.75 {
		t.Errorf("tatra saturation %.2f, want ~0.6 (HOL bound)", byName["tatra"])
	}
	out := FormatSaturation(results)
	if !strings.Contains(out, "fifoms") {
		t.Fatalf("FormatSaturation:\n%s", out)
	}
}

func TestSaturationValidation(t *testing.T) {
	if _, err := Saturation(SaturationConfig{}); err == nil {
		t.Fatal("empty saturation config accepted")
	}
}
