package experiment

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"voqsim/internal/traffic"
)

// seamSweep is the grid the point-seam tests run: small enough for
// tier-1, with one unreachable load so the Skipped path is covered.
func seamSweep(dir string) *Sweep {
	return &Sweep{
		Name:  "seam",
		Title: "point seam",
		N:     4,
		Loads: []float64{0.3, 0.6, 1.5}, // 1.5 > 4*0.3: unreachable under b=0.3
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.3, n)
		},
		Algorithms:    mustAlgos("fifoms", "oqfifo"),
		Slots:         2000,
		Seed:          42,
		CheckpointDir: dir,
	}
}

func mustAlgos(names ...string) []Algorithm {
	var out []Algorithm
	for _, n := range names {
		a, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, a)
	}
	return out
}

// TestRunPointAtMatchesRun pins the seam's core contract: every grid
// cell computed in isolation is identical — field for field, bit for
// bit through a JSON round-trip — to the cell Sweep.Run fills.
func TestRunPointAtMatchesRun(t *testing.T) {
	s := seamSweep("")
	tbl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for ai := range s.Algorithms {
		for li := range s.Loads {
			pt, err := s.RunPointAt(ai, li, PointRun{})
			if err != nil {
				t.Fatalf("RunPointAt(%d,%d): %v", ai, li, err)
			}
			if !reflect.DeepEqual(pt, tbl.Points[ai][li]) {
				t.Errorf("point (%d,%d) differs from Run's cell\nseam: %+v\nrun:  %+v", ai, li, pt, tbl.Points[ai][li])
			}
			got, _ := json.Marshal(pt)
			want, _ := json.Marshal(tbl.Points[ai][li])
			if string(got) != string(want) {
				t.Errorf("point (%d,%d) JSON differs\nseam: %s\nrun:  %s", ai, li, got, want)
			}
		}
	}
	if pt, _ := s.RunPointAt(0, 2, PointRun{}); pt.Skipped == "" {
		t.Error("unreachable load 1.5 not marked Skipped")
	}
}

// TestRunPointAtResumeIdentity pins the crash-recovery contract the
// distributed backend leans on: a point resumed from any mid-run
// snapshot blob equals the point run straight through.
func TestRunPointAtResumeIdentity(t *testing.T) {
	s := seamSweep("")
	straight, err := s.RunPointAt(0, 1, PointRun{})
	if err != nil {
		t.Fatal(err)
	}

	var blobs [][]byte
	var slots []int64
	withCkpt, err := s.RunPointAt(0, 1, PointRun{
		CheckpointEvery: 500,
		Checkpoint:      func(slot int64, blob []byte) { blobs = append(blobs, blob); slots = append(slots, slot) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withCkpt, straight) {
		t.Fatal("checkpointing changed the point's results")
	}
	if len(blobs) < 2 {
		t.Fatalf("expected >=2 checkpoints at cadence 500 over 2000 slots, got %d (slots %v)", len(blobs), slots)
	}

	for i, blob := range blobs {
		resumed, err := s.RunPointAt(0, 1, PointRun{Resume: blob})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resumed, straight) {
			t.Errorf("resume from checkpoint %d (slot %d) differs from straight run", i, slots[i])
		}
	}

	// A hostile/unusable blob silently re-runs from slot 0.
	garbled, err := s.RunPointAt(0, 1, PointRun{Resume: []byte("not a snapshot")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(garbled, straight) {
		t.Error("unusable resume blob did not fall back to a fresh identical run")
	}
}

// TestRunPointAtBounds rejects coordinates outside the grid and
// propagates sweep validation errors.
func TestRunPointAtBounds(t *testing.T) {
	s := seamSweep("")
	for _, c := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 3}} {
		if _, err := s.RunPointAt(c[0], c[1], PointRun{}); err == nil {
			t.Errorf("RunPointAt(%d,%d) accepted", c[0], c[1])
		}
	}
	bad := seamSweep("")
	bad.Loads = nil
	if _, err := bad.RunPointAt(0, 0, PointRun{}); err == nil {
		t.Error("empty grid accepted")
	}
}

// TestFinishedPointRoundTrip pins the exported finished-point files
// against the resumable sweep's own protocol: a point saved through
// the seam is what a resumable re-run loads, bit for bit.
func TestFinishedPointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := seamSweep(dir)

	if _, ok := s.LoadFinishedPoint(0, 0); ok {
		t.Fatal("loaded a finished point from an empty dir")
	}
	pt, err := s.RunPointAt(0, 0, PointRun{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFinishedPoint(0, 0, pt); err != nil {
		t.Fatal(err)
	}
	loaded, ok := s.LoadFinishedPoint(0, 0)
	if !ok {
		t.Fatal("saved point not loadable")
	}
	if !reflect.DeepEqual(loaded, pt) {
		t.Fatalf("round-trip changed the point\nsaved:  %+v\nloaded: %+v", pt, loaded)
	}

	// The file is the same one the resumable sweep writes, so a full
	// resumable run trusts it and skips the simulation.
	doneFile, _ := s.pointPaths(0, 0)
	if _, err := filepath.Match("*", doneFile); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl.Points[0][0], pt) {
		t.Error("resumable sweep did not reproduce the saved point")
	}

	// Without a CheckpointDir both helpers are inert.
	bare := seamSweep("")
	if err := bare.SaveFinishedPoint(0, 0, pt); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare.LoadFinishedPoint(0, 0); ok {
		t.Error("dirless sweep loaded a point")
	}
}

// TestTableSetPoint pins the merge half of the seam.
func TestTableSetPoint(t *testing.T) {
	s := seamSweep("")
	tbl, err := s.NewTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 2 || len(tbl.Points[0]) != 3 {
		t.Fatalf("table shape %dx%d, want 2x3", len(tbl.Points), len(tbl.Points[0]))
	}
	pt := Point{Algorithm: "fifoms", Load: 0.3}
	if err := tbl.SetPoint(0, 0, pt); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.PointAt(0, 0)
	if err != nil || got.Algorithm != "fifoms" {
		t.Fatalf("PointAt = %+v, %v", got, err)
	}
	for _, c := range [][2]int{{-1, 0}, {2, 0}, {0, 3}} {
		if err := tbl.SetPoint(c[0], c[1], pt); err == nil {
			t.Errorf("SetPoint(%d,%d) accepted", c[0], c[1])
		}
		if _, err := tbl.PointAt(c[0], c[1]); err == nil {
			t.Errorf("PointAt(%d,%d) accepted", c[0], c[1])
		}
	}
}
