package experiment

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"voqsim/internal/core"
	"voqsim/internal/switchsim"
)

// The sharded run engine behind Sweep.Run and Replicate. Both fan a
// set of independent simulations — grid points, replications — out
// over a worker pool; the engine owns the scheduling so that:
//
//   - Work is balanced by stealing. Shards are dealt round-robin into
//     one queue per worker, and a worker that drains its own queue
//     claims from its neighbours'. Points differ wildly in cost (a
//     saturated load simulates far more buffered cells per slot than a
//     light one), so static partitioning would leave the pool idling
//     behind one straggler.
//   - Arena state is reused, not reallocated. The pool shares one
//     mutex-guarded core.ArenaPool; a shard whose switch supports arena
//     adoption runs on a recycled arena, so ring buffers and slab
//     capacity grown by one point carry over to whichever worker next
//     runs a same-sized switch instead of being rebuilt from cold for
//     every (algorithm, load) cell.
//   - Completion streams. Every finished shard produces one Progress
//     event (serialized under a lock, so sinks may write to a
//     terminal) carrying completed/total counts, elapsed time and a
//     naive proportional ETA.
//
// Scheduling never influences results: every shard derives its seeds
// from its own coordinates, and each writes to its own result slot.

// Progress describes the state of a sharded run after one more shard
// completed. Events arrive from worker goroutines but are serialized:
// a sink never runs concurrently with itself.
type Progress struct {
	Done    int           // shards completed so far, including this one
	Total   int           // shards overall
	Label   string        // the completed shard, e.g. "fifoms@0.9"
	Elapsed time.Duration // since the run started
	// ETA estimates the remaining wall time by extrapolating the mean
	// cost of the completed shards. Early events over-trust the first
	// few shards; it converges as the run progresses.
	ETA time.Duration
}

// shardQueue is one worker's deal of the shard indices. next claims
// entries with an atomic cursor, so the owner and stealing workers can
// race on the same queue without locks; a queue whose cursor passed
// its length is permanently empty.
type shardQueue struct {
	head   atomic.Int64
	shards []int
}

func (q *shardQueue) next() (int, bool) {
	for {
		h := q.head.Load()
		if int(h) >= len(q.shards) {
			return 0, false
		}
		if q.head.CompareAndSwap(h, h+1) {
			return q.shards[h], true
		}
	}
}

// runShards executes shards 0..total-1 on a pool of workers and blocks
// until all complete. run is called once per shard — concurrently, so
// it must write only shard-local state — and returns the shard's label
// for progress reporting. The arena pool is shared by the whole worker
// fleet (ArenaPool is concurrency-safe); an arena checked out for one
// shard is private to it until released.
func runShards(workers, total int, progress func(Progress), run func(shard int, pool *core.ArenaPool) string) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if total <= 0 {
		return
	}

	queues := make([]shardQueue, workers)
	for i := 0; i < total; i++ {
		q := &queues[i%workers]
		q.shards = append(q.shards, i)
	}

	start := time.Now()
	pool := &core.ArenaPool{}
	var done atomic.Int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				shard, ok := queues[self].next()
				for off := 1; !ok && off < workers; off++ {
					shard, ok = queues[(self+off)%workers].next()
				}
				if !ok {
					return
				}
				label := run(shard, pool)
				if progress == nil {
					continue
				}
				d := done.Add(1)
				elapsed := time.Since(start)
				var eta time.Duration
				if rem := int64(total) - d; rem > 0 {
					eta = elapsed / time.Duration(d) * time.Duration(rem)
				}
				progressMu.Lock()
				progress(Progress{
					Done:    int(d),
					Total:   total,
					Label:   label,
					Elapsed: elapsed,
					ETA:     eta,
				})
				progressMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

// withPointLabels runs fn under pprof labels identifying the shard, so
// a CPU profile of a sweep attributes samples to (sweep, algorithm,
// load) — `go tool pprof -tagfocus` then isolates one point.
func withPointLabels(sweep, algo, load string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(
		"sweep", sweep, "algorithm", algo, "load", load,
	), func(context.Context) { fn() })
}

// adoptPooledArena swaps a recycled arena into sw when the underlying
// switch supports adoption (it is pristine and the sizes match). The
// returned release function hands the arena back to the pool once the
// run is over; it must be called exactly once, after the switch's last
// use.
func adoptPooledArena(sw switchsim.Switch, n int, pool *core.ArenaPool) (release func()) {
	cs, ok := sw.(*core.Switch)
	if !ok || pool == nil {
		return func() {}
	}
	a := pool.Get(n)
	if !cs.AdoptArena(a) {
		pool.Put(a)
		return func() {}
	}
	return func() { pool.Put(cs.ReleaseArena()) }
}
