package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voqsim/internal/traffic"
)

// resumeSweep is the fixed sweep the resume tests run in several
// interruption scenarios; every scenario must assemble the identical
// table.
func resumeSweep(dir string) *Sweep {
	return &Sweep{
		Name: "rt", Title: "resume test", N: 8,
		Loads:      []float64{0.2, 0.5},
		Algorithms: []Algorithm{FIFOMS, WBA},
		Slots:      3000, Seed: 11, Check: true,
		CheckpointDir: dir,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.25, n)
		},
	}
}

func tablesEqual(t *testing.T, ctx string, got, want *Table) {
	t.Helper()
	for ai := range want.Points {
		for li := range want.Points[ai] {
			if got.Points[ai][li] != want.Points[ai][li] {
				t.Fatalf("%s: point [%d][%d] differs:\n got %+v\nwant %+v",
					ctx, ai, li, got.Points[ai][li], want.Points[ai][li])
			}
		}
	}
}

func TestSweepCheckpointDir(t *testing.T) {
	ref := resumeSweep("")
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	// First resumable run: same table, and every point leaves a
	// finished-result JSON (with its mid-run snapshot cleaned up).
	dir := t.TempDir()
	got, err := resumeSweep(dir).Run()
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "checkpointed sweep", got, want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var done, snaps int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".json":
			done++
		case ".snap":
			snaps++
		}
	}
	if done != 4 || snaps != 0 {
		t.Fatalf("checkpoint dir holds %d finished points and %d snapshots, want 4 and 0", done, snaps)
	}

	// Second run over the same directory: all points load from disk.
	// Tampering with one saved point proves they are not re-simulated.
	s := resumeSweep(dir)
	doneFile, _ := s.pointPaths(0, 0)
	data, err := os.ReadFile(doneFile)
	if err != nil {
		t.Fatal(err)
	}
	var pt Point
	if err := json.Unmarshal(data, &pt); err != nil {
		t.Fatal(err)
	}
	pt.Results.Seed = 12345
	tampered, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doneFile, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Points[0][0].Results.Seed != 12345 {
		t.Fatal("finished point was re-simulated instead of loaded from disk")
	}
	if err := os.WriteFile(doneFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Interrupted-point scenario: replace one finished point with a
	// genuine mid-run snapshot, as a killed sweep would leave behind.
	// The re-run must resume it and still reproduce the table.
	s = resumeSweep(dir)
	doneFile, snapFile := s.pointPaths(1, 1)
	pat, err := s.Pattern(s.Loads[1], s.N)
	if err != nil {
		t.Fatal(err)
	}
	r, _, _ := s.pointRunner(1, 1, pat, nil)
	var blob []byte
	if _, err := r.RunWithCheckpoints(s.Algorithms[1].Name, 1000, func(next int64, b []byte) error {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(doneFile); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapFile, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "mid-run resume", got, want)

	// Corrupt snapshot scenario: the point must quietly re-run from
	// slot 0 and still produce the exact table.
	s = resumeSweep(dir)
	doneFile, snapFile = s.pointPaths(0, 1)
	if err := os.Remove(doneFile); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(snapFile, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "corrupt snapshot", got, want)
}

func TestReplicateConfigDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   ReplicateConfig
		want ReplicateConfig
	}{
		{"zeros take defaults", ReplicateConfig{},
			ReplicateConfig{Replications: 10, Slots: 50_000, Seed: 2004}},
		{"explicit values kept", ReplicateConfig{Replications: 3, Slots: 1234, Seed: 9, Workers: 2},
			ReplicateConfig{Replications: 3, Slots: 1234, Seed: 9, Workers: 2}},
		{"non-positive replications default", ReplicateConfig{Replications: -4},
			ReplicateConfig{Replications: 10, Slots: 50_000, Seed: 2004}},
		{"negative slots preserved for validation", ReplicateConfig{Slots: -1},
			ReplicateConfig{Replications: 10, Slots: -1, Seed: 2004}},
		{"negative workers preserved (GOMAXPROCS at run time)", ReplicateConfig{Workers: -3},
			ReplicateConfig{Replications: 10, Slots: 50_000, Seed: 2004, Workers: -3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			// ReplicateConfig holds func fields, so compare the
			// defaulted scalars individually.
			if got.Replications != tc.want.Replications || got.Slots != tc.want.Slots ||
				got.Seed != tc.want.Seed || got.Workers != tc.want.Workers {
				t.Fatalf("withDefaults(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestReplicateRejectsNegativeSlots(t *testing.T) {
	_, err := Replicate(ReplicateConfig{
		Algorithm: FIFOMS, N: 4, Slots: -5,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.25, n)
		},
		Load: 0.3,
	})
	if err == nil || !strings.Contains(err.Error(), "negative slot budget") {
		t.Fatalf("negative Slots accepted: %v", err)
	}
}
