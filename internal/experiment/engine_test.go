package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voqsim/internal/core"
	"voqsim/internal/traffic"
)

func TestRunShardsRunsEachShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const total = 53
		var counts [total]atomic.Int64
		runShards(workers, total, nil, func(shard int, pool *core.ArenaPool) string {
			if pool == nil {
				t.Error("nil arena pool")
			}
			counts[shard].Add(1)
			return ""
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunShardsStealsFromSlowWorkers(t *testing.T) {
	// Make worker 0's first shard (shard 0) a straggler. With 2 workers
	// and 8 shards dealt round-robin, worker 0 owns {0,2,4,6}; if no one
	// stole, those could only run on worker 0 *after* the straggler. The
	// other worker must pick them up while shard 0 blocks.
	release := make(chan struct{})
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		var stolen atomic.Int64
		runShards(2, 8, nil, func(shard int, _ *core.ArenaPool) string {
			if shard == 0 {
				<-release
				return ""
			}
			if stolen.Add(1) == 7 {
				close(release) // every other shard completed while 0 blocked
			}
			return ""
		})
	}()
	select {
	case <-release:
	case <-time.After(30 * time.Second):
		t.Fatal("remaining shards never completed while shard 0 blocked: stealing is broken")
	}
	done.Wait()
}

func TestRunShardsProgress(t *testing.T) {
	const total = 12
	var events []Progress
	runShards(3, total, func(p Progress) {
		events = append(events, p) // serialized by the engine
	}, func(shard int, _ *core.ArenaPool) string {
		return "shard"
	})
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("event %d: Done=%d Total=%d, want %d/%d", i, p.Done, p.Total, i+1, total)
		}
		if p.Label != "shard" {
			t.Fatalf("event %d: label %q", i, p.Label)
		}
		if p.Done < total && p.ETA <= 0 {
			t.Fatalf("event %d: no ETA with %d shards remaining", i, total-p.Done)
		}
		if p.Done == total && p.ETA != 0 {
			t.Fatalf("final event: nonzero ETA %v", p.ETA)
		}
	}
}

// determinismSweep is a small grid crossing a core-arena algorithm
// with a non-arena one, wide enough that several points share each
// worker's recycled arenas.
func determinismSweep(workers int, dir string) *Sweep {
	return &Sweep{
		Name:  "det",
		N:     8,
		Loads: []float64{0.3, 0.6, 0.9},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 4, n)
		},
		Algorithms:    []Algorithm{FIFOMS, ISLIP, TATRA},
		Slots:         3_000,
		Seed:          77,
		Workers:       workers,
		CheckpointDir: dir,
	}
}

// TestSweepWorkerCountInvariance pins the sharded engine's core
// guarantee: the assembled table and the checkpoint artifacts are
// byte-identical no matter how many workers ran the sweep — arena
// recycling, stealing order and progress reporting leave no trace in
// the results.
func TestSweepWorkerCountInvariance(t *testing.T) {
	type outcome struct {
		workers int
		table   []byte
		files   map[string][]byte
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var outcomes []outcome
	for _, workers := range counts {
		dir := t.TempDir()
		s := determinismSweep(workers, dir)
		s.Progress = func(Progress) {} // exercise the reporting path too
		tbl, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(tbl)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = blob
		}
		if len(files) == 0 {
			t.Fatalf("workers=%d: no checkpoint artifacts written", workers)
		}
		outcomes = append(outcomes, outcome{workers, data, files})
	}

	ref := outcomes[0]
	for _, o := range outcomes[1:] {
		if string(o.table) != string(ref.table) {
			t.Errorf("table with %d workers differs from %d workers", o.workers, ref.workers)
		}
		if len(o.files) != len(ref.files) {
			t.Errorf("artifact count with %d workers: %d, want %d", o.workers, len(o.files), len(ref.files))
		}
		for name, blob := range ref.files {
			got, ok := o.files[name]
			if !ok {
				t.Errorf("workers=%d: artifact %s missing", o.workers, name)
				continue
			}
			if string(got) != string(blob) {
				t.Errorf("workers=%d: artifact %s differs", o.workers, name)
			}
		}
	}
}

// TestSweepArenaReuseMatchesFresh pins that recycled arenas are
// invisible: a sweep without checkpointing (pure pooled path) equals
// one whose pool is never primed, point for point.
func TestSweepArenaReuseMatchesFresh(t *testing.T) {
	run := func(workers int) []byte {
		s := determinismSweep(workers, "")
		tbl, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// workers=1 funnels every point through one worker's pool — maximal
	// reuse; workers=total gives every point a cold pool — no reuse.
	reused := run(1)
	fresh := run(9)
	if string(reused) != string(fresh) {
		t.Fatal("arena reuse changed sweep results")
	}
}
