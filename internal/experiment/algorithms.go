// Package experiment defines the paper's experiments as data: the
// algorithm roster, the load sweeps behind every figure of Section V,
// a parallel sweep runner, and formatters that render the measured
// series as tables, CSV and JSON.
//
// Each figure is a Sweep: a traffic family parameterised by effective
// load, a list of scheduling algorithms, and the slot budget. Sweeps
// fan the (algorithm x load) grid out over a worker pool — points are
// independent simulations, so the sweep scales linearly with cores —
// while keeping results bit-reproducible: every point derives its own
// seed from the sweep seed, never from scheduling order.
//
// The checked-in EXPERIMENTS.md is the rendered output of these sweeps
// (via internal/report and cmd/voqreport); its "Worked reproduction"
// section shows how to regenerate individual figure points with
// cmd/voqsweep using the same seeds.
package experiment

import (
	"fmt"

	"voqsim/internal/cioq"
	"voqsim/internal/core"
	"voqsim/internal/eslip"
	"voqsim/internal/oq"
	"voqsim/internal/sched/islip"
	"voqsim/internal/sched/lqfms"
	"voqsim/internal/sched/pim"
	"voqsim/internal/sched/tdrr"
	"voqsim/internal/switchsim"
	"voqsim/internal/tatra"
	"voqsim/internal/wba"
	"voqsim/internal/xrand"
)

// Algorithm names a scheduler and knows how to build a fresh switch
// running it. New must return an independent instance every call; runs
// never share switch state.
type Algorithm struct {
	Name string
	New  func(n int, root *xrand.Rand) switchsim.Switch
}

// The built-in roster. The first four are the paper's comparison set;
// the rest are extension baselines and ablations.
var (
	// FIFOMS is the paper's algorithm on the multicast VOQ structure.
	FIFOMS = Algorithm{Name: "fifoms", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, &core.FIFOMS{}, root)
	}}
	// TATRA is the multicast baseline on a single-input-queued switch.
	TATRA = Algorithm{Name: "tatra", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return tatra.New(n)
	}}
	// ISLIP treats multicast as independent unicast copies on the VOQ
	// structure.
	ISLIP = Algorithm{Name: "islip", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, islip.New(), root)
	}}
	// OQFIFO is the output-queued benchmark.
	OQFIFO = Algorithm{Name: "oqfifo", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return oq.New(n)
	}}

	// PIM is the randomised unicast VOQ baseline (extension).
	PIM = Algorithm{Name: "pim", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, pim.New(), root)
	}}
	// LQFMS swaps FIFOMS's time-stamp criterion for VOQ backlog on the
	// identical queue structure (design-alternative ablation).
	LQFMS = Algorithm{Name: "lqfms", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, lqfms.New(), root)
	}}
	// TDRR is the two-dimensional round-robin unicast VOQ baseline
	// (reference [9] of the paper; extension).
	TDRR = Algorithm{Name: "2drr", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, tdrr.New(), root)
	}}
	// ESLIP is the industrial combined unicast/multicast scheduler
	// (Cisco 12000 style): unicast VOQs + one multicast queue per
	// input, shared multicast pointer (extension).
	ESLIP = Algorithm{Name: "eslip", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return eslip.New(n)
	}}
	// WBA is the weight-based multicast baseline on the single-queue
	// structure (extension).
	WBA = Algorithm{Name: "wba", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return wba.New(n, root)
	}}
	// FIFOMSNoSplit is the all-or-nothing ablation of FIFOMS.
	FIFOMSNoSplit = Algorithm{Name: "fifoms-nosplit", New: func(n int, root *xrand.Rand) switchsim.Switch {
		return core.NewSwitch(n, &core.FIFOMS{NoFanoutSplitting: true}, root)
	}}
)

// CIOQ returns a combined input-output queued switch with the given
// fabric speedup, FIFOMS-scheduled at the input stage. Named
// "cioq-sK" in reports and ByName.
func CIOQ(speedup int) Algorithm {
	return Algorithm{
		Name: fmt.Sprintf("cioq-s%d", speedup),
		New: func(n int, root *xrand.Rand) switchsim.Switch {
			return cioq.New(n, speedup, &core.FIFOMS{}, root)
		},
	}
}

// FIFOMSRounds returns the FIFOMS variant capped at the given number
// of request/grant rounds per slot (the convergence ablation).
func FIFOMSRounds(maxRounds int) Algorithm {
	return Algorithm{
		Name: fmt.Sprintf("fifoms-r%d", maxRounds),
		New: func(n int, root *xrand.Rand) switchsim.Switch {
			return core.NewSwitch(n, &core.FIFOMS{MaxRounds: maxRounds}, root)
		},
	}
}

// PaperAlgorithms returns the paper's comparison set in the order the
// figures plot them: FIFOMS, TATRA, iSLIP, OQFIFO.
func PaperAlgorithms() []Algorithm { return []Algorithm{FIFOMS, TATRA, ISLIP, OQFIFO} }

// AllAlgorithms returns the paper set plus the extension baselines.
func AllAlgorithms() []Algorithm {
	return []Algorithm{FIFOMS, TATRA, ISLIP, OQFIFO, PIM, TDRR, WBA, LQFMS, ESLIP, FIFOMSNoSplit}
}

// ByName returns the algorithm with the given name from the full
// roster (including round-capped FIFOMS variants written "fifoms-rK").
func ByName(name string) (Algorithm, error) {
	for _, a := range AllAlgorithms() {
		if a.Name == name {
			return a, nil
		}
	}
	var k int
	if _, err := fmt.Sscanf(name, "fifoms-r%d", &k); err == nil && k > 0 {
		return FIFOMSRounds(k), nil
	}
	if _, err := fmt.Sscanf(name, "cioq-s%d", &k); err == nil && k > 0 {
		return CIOQ(k), nil
	}
	return Algorithm{}, fmt.Errorf("experiment: unknown algorithm %q", name)
}
