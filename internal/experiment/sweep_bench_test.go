package experiment

// Whole-sweep benchmark for the sharded sweep engine: many short
// points over a worker pool, reporting aggregate simulated slots per
// second. Together with BenchmarkSlot in internal/switchsim it backs
// the end-to-end numbers in BENCH_e2e.json.

import (
	"fmt"
	"testing"

	"voqsim/internal/traffic"
)

// benchSweep builds the standard sweep workload of the end-to-end
// suite: FIFOMS and iSLIP over six loads on a 16-port switch, short
// points so one sweep is tens of milliseconds.
func benchSweep(workers int) *Sweep {
	return &Sweep{
		Name:  "bench",
		N:     16,
		Loads: []float64{0.3, 0.5, 0.6, 0.7, 0.8, 0.9},
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 4, n)
		},
		Algorithms: []Algorithm{FIFOMS, ISLIP},
		Slots:      2_000,
		Seed:       2004,
		Workers:    workers,
	}
}

// BenchmarkReplicatedSweep measures the replicated-sweep engine:
// every grid point simulated 3 times (R x points shards on the same
// worker pool) and merged. workers=1 is the sequential baseline for
// the per-core scaling table in BENCH_parallel.json; run through
// scripts/benchcmp -scaling.
func BenchmarkReplicatedSweep(b *testing.B) {
	const reps = 3
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSweep(workers)
			s.Replications = reps
			slots := int64(0)
			for i := 0; i < b.N; i++ {
				tbl, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range tbl.Points {
					for _, pt := range row {
						slots += pt.Results.Slots
					}
				}
			}
			b.ReportAllocs()
			b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}

// BenchmarkSweep measures aggregate sweep throughput at 1, 4 and 8
// workers. On a k-core host throughput saturates at k workers; the
// recorded numbers state the host's core count.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSweep(workers)
			slots := int64(0)
			for i := 0; i < b.N; i++ {
				tbl, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range tbl.Points {
					for _, pt := range row {
						slots += pt.Results.Slots
					}
				}
			}
			b.ReportAllocs()
			b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}
