package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"voqsim/internal/switchsim"
	"voqsim/internal/xrand"
)

// The saturation experiment measures each algorithm's maximum
// sustainable load under a traffic family by bisecting on the
// stability verdict — the quantity behind the paper's prose claims
// ("TATRA can only reach a maximum effective load of about 55%",
// "FIFOMS achieves 100% throughput under uniformly distributed
// traffic").

// SaturationResult is one algorithm's measured saturation load.
type SaturationResult struct {
	Algorithm string  `json:"algorithm"`
	MaxLoad   float64 `json:"max_load"`  // highest sustained load found
	Precision float64 `json:"precision"` // bisection interval width
}

// SaturationConfig sets up the search.
type SaturationConfig struct {
	N          int
	Pattern    PatternFunc
	Algorithms []Algorithm
	// Slots per probe (default 60k); longer probes detect slow drifts.
	Slots int64
	Seed  uint64
	// Precision is the bisection stopping width (default 0.02).
	Precision float64
	// Workers parallelises across algorithms.
	Workers int
}

func (c SaturationConfig) withDefaults() SaturationConfig {
	if c.Slots <= 0 {
		c.Slots = 60_000
	}
	if c.Seed == 0 {
		c.Seed = 2004
	}
	if c.Precision <= 0 {
		c.Precision = 0.02
	}
	return c
}

// Saturation bisects the maximum sustainable load of every algorithm.
func Saturation(cfg SaturationConfig) ([]SaturationResult, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 || cfg.Pattern == nil || len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("experiment: incomplete saturation config")
	}
	results := make([]SaturationResult, len(cfg.Algorithms))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, algo := range cfg.Algorithms {
		wg.Add(1)
		go func(i int, algo Algorithm) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = saturate(cfg, algo)
		}(i, algo)
	}
	wg.Wait()
	return results, nil
}

// stableProbe runs one probe and reports whether the load was held.
// Unreachable loads count as unsustainable.
func stableProbe(cfg SaturationConfig, algo Algorithm, load float64) bool {
	pat, err := cfg.Pattern(load, cfg.N)
	if err != nil {
		return false
	}
	seed := cfg.Seed ^ uint64(load*1e6)
	sw := algo.New(cfg.N, xrand.New(seed).Split("switch", 0))
	res := switchsim.New(sw, pat, switchsim.Config{Slots: cfg.Slots, Seed: seed},
		xrand.New(seed).Split("traffic", 0)).Run(algo.Name)
	return !res.Unstable
}

func saturate(cfg SaturationConfig, algo Algorithm) SaturationResult {
	lo, hi := 0.0, 1.0
	// Establish a stable floor; some algorithm/traffic pairs cannot
	// hold even tiny loads stably (pathological configs), in which
	// case the answer is 0.
	if stableProbe(cfg, algo, 0.05) {
		lo = 0.05
	} else {
		return SaturationResult{Algorithm: algo.Name, MaxLoad: 0, Precision: cfg.Precision}
	}
	if stableProbe(cfg, algo, 1.0) {
		// Sustains (essentially) full load; report 1.0 directly.
		return SaturationResult{Algorithm: algo.Name, MaxLoad: 1.0, Precision: cfg.Precision}
	}
	for hi-lo > cfg.Precision {
		mid := (lo + hi) / 2
		if stableProbe(cfg, algo, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return SaturationResult{Algorithm: algo.Name, MaxLoad: lo, Precision: cfg.Precision}
}

// FormatSaturation renders the results as an aligned table.
func FormatSaturation(results []SaturationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s\n", "algorithm", "max load")
	for _, r := range results {
		fmt.Fprintf(&b, "%-16s %9.0f%%\n", r.Algorithm, r.MaxLoad*100)
	}
	return b.String()
}
