package experiment

import (
	"fmt"
	"os"
	"strconv"

	invcheck "voqsim/internal/check"
	"voqsim/internal/core"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

// PatternFunc builds the traffic pattern offering the given effective
// load on an n-port switch, or reports that the load is not offerable
// under the family's fixed shape parameters.
type PatternFunc func(load float64, n int) (traffic.Pattern, error)

// Sweep is one experiment: a traffic family swept over loads and run
// under several algorithms. The zero values of Slots, Workers and
// UnstableCellLimit select sensible defaults.
type Sweep struct {
	Name        string // short id, e.g. "fig4"
	Title       string // human description for report headers
	N           int    // switch size (the paper: 16)
	Loads       []float64
	Pattern     PatternFunc
	Algorithms  []Algorithm
	Slots       int64  // slots per point (default 200k)
	Seed        uint64 // base seed; every point derives its own
	Workers     int    // parallel points (default GOMAXPROCS)
	UnstableCap int64  // backlog ceiling (default 1000*N)
	// Check runs every point under the runtime invariant checker
	// (internal/check). Measurements are unchanged — the checker is
	// passive — but any violation is recorded in the point's
	// CheckError, and Table.CheckFailures surfaces them.
	Check bool
	// CheckpointDir, when non-empty, makes the sweep resumable: each
	// completed point's results are saved there as JSON, each running
	// point checkpoints its simulation state periodically, and a
	// re-run of the identical sweep loads finished points from disk
	// and resumes interrupted ones mid-run — reproducing the
	// uninterrupted sweep bit for bit (see resume.go).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in slots (default:
	// a tenth of the point's slot budget). Only used with
	// CheckpointDir.
	CheckpointEvery int64
	// Progress, when non-nil, receives one event per completed grid
	// point (see the Progress type). Events are serialized and carry
	// running ETA, so a sink may render them straight to a terminal.
	// Reporting never affects results or their determinism.
	Progress func(Progress)
	// Fast runs every point in the engine's relaxed-identity fast
	// mode (DESIGN.md §12): same stochastic model, O(1) samplers,
	// batched statistics. Incompatible with Check (the checker's
	// oracle replays exact draw order) and with CheckpointDir (fast
	// runs cannot be snapshotted); Run rejects the combination.
	Fast bool
	// Replications runs every grid point R times with independent
	// per-replication seed substreams and merges the R runs into the
	// point's Results with switchsim.MergeResults (counters summed,
	// moments combined, gauges weighted by measured window). The R
	// runs are shards of the same work-stealing pool as the points
	// themselves, so a single point saturates the whole worker fleet;
	// the merged table is byte-identical for any worker count.
	// Replication 0 uses exactly the legacy point seed, so a
	// 1-replication sweep equals a plain one. Values <= 1 mean one run
	// per point; incompatible with CheckpointDir (the resume protocol
	// stores one simulation per point).
	Replications int
}

// Point is one measured (algorithm, load) grid cell.
type Point struct {
	Algorithm  string            `json:"algorithm"`
	Load       float64           `json:"load"`
	Skipped    string            `json:"skipped,omitempty"` // non-empty when the load is unreachable
	CheckError string            `json:"check_error,omitempty"`
	Results    switchsim.Results `json:"results"`
}

// Table is a completed sweep: Points[a][l] holds algorithm a at load l.
type Table struct {
	Name   string    `json:"name"`
	Title  string    `json:"title"`
	N      int       `json:"n"`
	Loads  []float64 `json:"loads"`
	Algos  []string  `json:"algorithms"`
	Points [][]Point `json:"points"`
}

// Validate checks the sweep's structural constraints and flag
// combinations without running anything; Run performs the same checks.
// It is exported so a driver that fans the grid out itself — the
// distributed coordinator in internal/dsweep — can reject a bad sweep
// before leasing any point.
func (s *Sweep) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("experiment: sweep %q has no switch size", s.Name)
	}
	if len(s.Loads) == 0 || len(s.Algorithms) == 0 {
		return fmt.Errorf("experiment: sweep %q has an empty grid", s.Name)
	}
	if s.Fast && s.Check {
		return fmt.Errorf("experiment: sweep %q: Fast and Check are mutually exclusive", s.Name)
	}
	if s.Fast && s.CheckpointDir != "" {
		return fmt.Errorf("experiment: sweep %q: Fast sweeps cannot be checkpointed or resumed", s.Name)
	}
	if s.Replications > 1 && s.CheckpointDir != "" {
		return fmt.Errorf("experiment: sweep %q: replicated sweeps cannot be checkpointed or resumed", s.Name)
	}
	return nil
}

// NewTable validates the sweep and returns its empty result table,
// with every grid cell zero. Sweep.Run fills such a table itself; an
// external driver (internal/dsweep) fills it point by point with
// Table.SetPoint.
func (s *Sweep) NewTable() (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tbl := &Table{Name: s.Name, Title: s.Title, N: s.N, Loads: s.Loads}
	tbl.Points = make([][]Point, len(s.Algorithms))
	for i, a := range s.Algorithms {
		tbl.Algos = append(tbl.Algos, a.Name)
		tbl.Points[i] = make([]Point, len(s.Loads))
	}
	return tbl, nil
}

// Run executes every (algorithm, load) point of the sweep on the
// sharded engine (see engine.go) and returns the assembled table.
// Results are deterministic for a fixed Sweep regardless of worker
// count: every point derives its seeds from its grid coordinates and
// writes only its own table cell.
func (s *Sweep) Run() (*Table, error) {
	tbl, err := s.NewTable()
	if err != nil {
		return nil, err
	}
	if s.CheckpointDir != "" {
		if err := os.MkdirAll(s.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: checkpoint dir: %w", err)
		}
	}

	if s.Replications > 1 {
		return s.runReplicated(tbl)
	}

	total := len(s.Algorithms) * len(s.Loads)
	runShards(s.Workers, total, s.Progress, func(shard int, pool *core.ArenaPool) string {
		ai, li := shard/len(s.Loads), shard%len(s.Loads)
		load := strconv.FormatFloat(s.Loads[li], 'g', -1, 64)
		withPointLabels(s.Name, s.Algorithms[ai].Name, load, func() {
			tbl.Points[ai][li] = s.runPoint(ai, li, pool)
		})
		return s.Algorithms[ai].Name + "@" + load
	})
	return tbl, nil
}

// runPoint simulates one grid cell. The point seed mixes the sweep
// seed with the grid coordinates so that (a) every point is
// independent and (b) re-running the sweep — with any worker count —
// reproduces it exactly.
func (s *Sweep) runPoint(ai, li int, pool *core.ArenaPool) Point {
	algo := s.Algorithms[ai]
	load := s.Loads[li]
	pt := Point{Algorithm: algo.Name, Load: load}

	pat, err := s.Pattern(load, s.N)
	if err != nil {
		pt.Skipped = err.Error()
		return pt
	}

	if s.CheckpointDir != "" {
		return s.runPointResumable(ai, li, pt, pat, pool)
	}
	r, ck, release := s.pointRunner(ai, li, pat, pool)
	pt.Results = r.Run(algo.Name)
	release()
	if ck != nil {
		if err := ck.Err(); err != nil {
			pt.CheckError = err.Error()
		}
	}
	return pt
}

// pointRunner builds the runner of one grid cell, wrapped in the
// invariant checker when the sweep asks for checking, running on a
// recycled arena when the worker's pool has one. The release function
// must be called once the run is over. The point seed mixes the sweep
// seed with the grid coordinates; the derivation is pinned —
// checkpoint blobs embed the derived seed, so changing it would orphan
// every saved checkpoint.
func (s *Sweep) pointRunner(ai, li int, pat traffic.Pattern, pool *core.ArenaPool) (*switchsim.Runner, *invcheck.Checker, func()) {
	return s.pointRunnerRep(ai, li, 0, pat, pool)
}

// pointRunnerRep is pointRunner for one replication of the cell.
// Replication 0 uses the pinned point seed unchanged; higher
// replications mix in their index, giving every replication an
// independent substream that is still a pure function of
// (sweep seed, ai, li, rep).
func (s *Sweep) pointRunnerRep(ai, li, rep int, pat traffic.Pattern, pool *core.ArenaPool) (*switchsim.Runner, *invcheck.Checker, func()) {
	algo := s.Algorithms[ai]
	seed := s.Seed ^ (uint64(ai)+1)*0x9e3779b97f4a7c15 ^ (uint64(li)+1)*0xd6e8feb86659fd93
	seed ^= uint64(rep) * 0x94d049bb133111eb
	trafficRoot := xrand.New(seed).Split("run-traffic", 0)
	switchRoot := xrand.New(seed).Split("run-switch", 0)

	sw := algo.New(s.N, switchRoot)
	release := adoptPooledArena(sw, s.N, pool)
	cfg := switchsim.Config{Slots: s.Slots, Seed: seed, UnstableCellLimit: s.UnstableCap, Fast: s.Fast}
	if s.Check {
		r, ck := switchsim.NewChecked(sw, pat, cfg, trafficRoot, invcheck.Options{})
		return r, ck, release
	}
	return switchsim.New(sw, pat, cfg, trafficRoot), nil, release
}

// CheckFailures lists every point of a checked sweep that drew an
// invariant-checker verdict, rendered "algo@load: error". Empty for a
// clean (or unchecked) table.
func (t *Table) CheckFailures() []string {
	var out []string
	for ai, row := range t.Points {
		for li, pt := range row {
			if pt.CheckError != "" {
				out = append(out, fmt.Sprintf("%s@%.3f: %s", t.Algos[ai], t.Loads[li], pt.CheckError))
			}
		}
	}
	return out
}

// SetPoint stores one measured grid cell, addressed by algorithm and
// load index. It is the merge half of the distributed seam: a
// coordinator places points computed elsewhere into the table that
// Sweep.Run would have filled locally.
func (t *Table) SetPoint(ai, li int, pt Point) error {
	if ai < 0 || ai >= len(t.Points) || li < 0 || li >= len(t.Loads) {
		return fmt.Errorf("experiment: point (%d,%d) outside %dx%d grid", ai, li, len(t.Points), len(t.Loads))
	}
	t.Points[ai][li] = pt
	return nil
}

// PointAt returns the grid cell at the given coordinates.
func (t *Table) PointAt(ai, li int) (Point, error) {
	if ai < 0 || ai >= len(t.Points) || li < 0 || li >= len(t.Loads) {
		return Point{}, fmt.Errorf("experiment: point (%d,%d) outside %dx%d grid", ai, li, len(t.Points), len(t.Loads))
	}
	return t.Points[ai][li], nil
}

// Get returns the point for the given algorithm name and load index.
func (t *Table) Get(algo string, li int) (Point, error) {
	for ai, name := range t.Algos {
		if name == algo {
			if li < 0 || li >= len(t.Loads) {
				return Point{}, fmt.Errorf("experiment: load index %d outside %d", li, len(t.Loads))
			}
			return t.Points[ai][li], nil
		}
	}
	return Point{}, fmt.Errorf("experiment: algorithm %q not in table %q", algo, t.Name)
}

// Series extracts one metric for one algorithm across all loads.
// Skipped or (for Saturating metrics) unstable points yield +Inf.
func (t *Table) Series(algo string, m Metric) ([]float64, error) {
	for ai, name := range t.Algos {
		if name != algo {
			continue
		}
		out := make([]float64, len(t.Loads))
		for li, pt := range t.Points[ai] {
			out[li] = m.ValueOf(pt)
		}
		return out, nil
	}
	return nil, fmt.Errorf("experiment: algorithm %q not in table %q", algo, t.Name)
}
