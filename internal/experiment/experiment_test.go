package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"voqsim/internal/traffic"
)

// quick returns reduced-budget options for unit tests: small slot
// counts and a thinner load grid keep the full grid under a second.
func quick() Options {
	return Options{Slots: 4000, Seed: 99}
}

func TestAlgorithmsConstruct(t *testing.T) {
	for _, a := range AllAlgorithms() {
		sw := a.New(8, testRoot())
		if sw.Ports() != 8 {
			t.Fatalf("%s: Ports = %d", a.Name, sw.Ports())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fifoms", "tatra", "islip", "oqfifo", "pim", "2drr", "wba", "lqfms", "eslip", "fifoms-nosplit"} {
		a, err := ByName(name)
		if err != nil || a.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, a.Name, err)
		}
	}
	a, err := ByName("fifoms-r3")
	if err != nil || a.Name != "fifoms-r3" {
		t.Fatalf("round-capped lookup: %v, %v", a.Name, err)
	}
	c, err := ByName("cioq-s2")
	if err != nil || c.Name != "cioq-s2" {
		t.Fatalf("cioq lookup: %v, %v", c.Name, err)
	}
	if sw := c.New(8, testRoot()); sw.Ports() != 8 {
		t.Fatal("cioq constructor broken")
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSweepRunsAndIsDeterministic(t *testing.T) {
	mk := func(workers int) *Table {
		s := &Sweep{
			Name: "t", Title: "test", N: 8,
			Loads:      []float64{0.2, 0.5},
			Algorithms: []Algorithm{FIFOMS, OQFIFO},
			Slots:      3000, Seed: 7, Workers: workers,
			Pattern: func(load float64, n int) (traffic.Pattern, error) {
				return traffic.BernoulliAtLoad(load, 0.25, n)
			},
		}
		tbl, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a, b := mk(1), mk(4)
	for ai := range a.Points {
		for li := range a.Points[ai] {
			if a.Points[ai][li] != b.Points[ai][li] {
				t.Fatalf("worker count changed results at [%d][%d]:\n%+v\n%+v",
					ai, li, a.Points[ai][li], b.Points[ai][li])
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	s := &Sweep{Name: "bad"}
	if _, err := s.Run(); err == nil {
		t.Fatal("empty sweep accepted")
	}
	s = &Sweep{Name: "bad", N: 8, Loads: []float64{0.5}}
	if _, err := s.Run(); err == nil {
		t.Fatal("sweep without algorithms accepted")
	}
}

func TestUnreachableLoadSkipped(t *testing.T) {
	s := &Sweep{
		Name: "t", N: 8,
		Loads:      []float64{0.5, 3.0}, // 3.0 unreachable with b=0.25 (max 2.0)
		Algorithms: []Algorithm{OQFIFO},
		Slots:      1000, Seed: 1,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.25, n)
		},
	}
	tbl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Points[0][0].Skipped != "" {
		t.Fatal("reachable load skipped")
	}
	if tbl.Points[0][1].Skipped == "" {
		t.Fatal("unreachable load not skipped")
	}
	if v := InputDelay.ValueOf(tbl.Points[0][1]); !math.IsInf(v, 1) {
		t.Fatalf("skipped point metric = %v, want +Inf", v)
	}
}

func TestSeriesAndGet(t *testing.T) {
	tbl := smallTable(t)
	ys, err := tbl.Series("fifoms", InputDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != len(tbl.Loads) {
		t.Fatalf("series length %d", len(ys))
	}
	for _, y := range ys {
		if math.IsNaN(y) || y < 1 {
			t.Fatalf("implausible delay %v", y)
		}
	}
	if _, err := tbl.Series("nope", InputDelay); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := tbl.Get("fifoms", 99); err == nil {
		t.Fatal("bad load index accepted")
	}
}

var cachedSmall *Table

func smallTable(t *testing.T) *Table {
	t.Helper()
	if cachedSmall != nil {
		return cachedSmall
	}
	s := &Sweep{
		Name: "small", Title: "small test sweep", N: 8,
		Loads:      []float64{0.2, 0.6},
		Algorithms: []Algorithm{FIFOMS, ISLIP},
		Slots:      3000, Seed: 5,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.25, n)
		},
	}
	tbl, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cachedSmall = tbl
	return tbl
}

func TestFormatMetric(t *testing.T) {
	tbl := smallTable(t)
	out := tbl.FormatMetric(InputDelay)
	for _, want := range []string{"fifoms", "islip", "0.2", "0.6", InputDelay.Label} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatValueEdgeCases(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "sat" {
		t.Fatalf("Inf renders as %q", got)
	}
	if got := formatValue(math.NaN()); got != "-" {
		t.Fatalf("NaN renders as %q", got)
	}
	if got := formatValue(0); got != "0.000" {
		t.Fatalf("0 renders as %q", got)
	}
	if got := formatValue(123456); !strings.Contains(got, "e") {
		t.Fatalf("large value renders as %q", got)
	}
}

func TestCSVRoundTrippable(t *testing.T) {
	tbl := smallTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf, InputDelay, AvgQueue); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 algos * 2 loads * 2 metrics
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines, want 9:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "sweep,algorithm,load,metric,value") {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tbl := smallTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tbl.Name || len(got.Points) != len(tbl.Points) {
		t.Fatalf("round trip mismatch")
	}
	if got.Points[0][0].Results != tbl.Points[0][0].Results {
		t.Fatal("results changed in round trip")
	}
}

func TestReadTableJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadTableJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadTableJSON(strings.NewReader(`{"name":"x","algorithms":["a"],"loads":[1],"points":[]}`)); err == nil {
		t.Fatal("inconsistent table accepted")
	}
}

func TestFigureDefinitions(t *testing.T) {
	o := quick()
	figs := Figures(o)
	for _, name := range []string{"fig4", "fig5", "fig6", "fig7", "fig8"} {
		sw, ok := figs[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if sw.N != 16 || len(sw.Loads) == 0 || len(sw.Algorithms) == 0 {
			t.Fatalf("%s misconfigured: %+v", name, sw)
		}
		if _, err := sw.Pattern(0.5, sw.N); err != nil {
			t.Fatalf("%s pattern at 0.5: %v", name, err)
		}
	}
	exts := Extensions(o)
	for _, name := range []string{"ablation-rounds", "ablation-splitting", "mixed"} {
		if _, ok := exts[name]; !ok {
			t.Fatalf("missing extension %s", name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 16 || o.Seed != 2004 {
		t.Fatalf("defaults: %+v", o)
	}
	if len(Options{Extended: true}.algorithms()) <= len(Options{}.algorithms()) {
		t.Fatal("Extended roster not larger")
	}
	if got := (Options{Loads: []float64{0.5}}).loads(defaultLoads); len(got) != 1 {
		t.Fatal("load override ignored")
	}
}

func TestFig5UsesRoundsAlgorithms(t *testing.T) {
	sw := Fig5(quick())
	if len(sw.Algorithms) != 2 || sw.Algorithms[0].Name != "fifoms" || sw.Algorithms[1].Name != "islip" {
		t.Fatalf("fig5 roster: %+v", sw.Algorithms)
	}
	ext := Fig5(Options{Extended: true})
	if len(ext.Algorithms) != 3 {
		t.Fatalf("extended fig5 roster: %d algorithms", len(ext.Algorithms))
	}
}
