package experiment

// Shape checkers for the extension sweeps. Like the figure checkers,
// they encode the qualitative claims the extension experiments exist
// to demonstrate, with slack for reduced slot budgets.

// CheckAblationSplitting: fanout splitting is necessary for high
// throughput — the no-splitting variant saturates well before FIFOMS.
func (t *Table) CheckAblationSplitting() []string {
	var v []string
	check(&v, t.stableAt("fifoms", 0.9), "fifoms unstable at 0.9")
	check(&v, t.unstableByLoad("fifoms-nosplit", 0.8), "no-splitting variant survived to 0.8")
	check(&v, t.stableAt("fifoms-nosplit", 0.3), "no-splitting variant unstable even at 0.3")
	return v
}

// CheckAblationRounds: extra rounds only matter near saturation; at
// moderate load one round is within a whisker of full convergence.
func (t *Table) CheckAblationRounds() []string {
	var v []string
	lowOne := t.metricAt("fifoms-r1", InputDelay, 0.4)
	lowFull := t.metricAt("fifoms", InputDelay, 0.4)
	check(&v, lowOne <= lowFull*1.15+0.1,
		"one round (%.2f) already costs >15%% delay at load 0.4 vs %.2f", lowOne, lowFull)
	highOne := t.metricAt("fifoms-r1", InputDelay, 0.9)
	highFull := t.metricAt("fifoms", InputDelay, 0.9)
	check(&v, highFull <= highOne+0.5,
		"full convergence (%.2f) worse than one round (%.2f) at load 0.9", highFull, highOne)
	return v
}

// CheckAblationCriterion: the FIFO time stamp buys multicast latency
// over longest-queue weighting without losing stability.
func (t *Table) CheckAblationCriterion() []string {
	var v []string
	f, l := t.metricAt("fifoms", InputDelay, 0.8), t.metricAt("lqfms", InputDelay, 0.8)
	check(&v, f <= l*1.05+0.1, "fifoms delay %.2f above lqfms %.2f at load 0.8", f, l)
	check(&v, t.stableAt("fifoms", 0.9), "fifoms unstable at 0.9")
	check(&v, t.stableAt("lqfms", 0.9), "lqfms unstable at 0.9 (backlog weighting should hold throughput)")
	return v
}

// CheckSpeedup: CIOQ speedup 2 sits essentially on the OQ delay curve
// and never behind the pure input-queued switch.
func (t *Table) CheckSpeedup() []string {
	var v []string
	const load = 0.9
	s2 := t.metricAt("cioq-s2", InputDelay, load)
	iq := t.metricAt("fifoms", InputDelay, load)
	oqd := t.metricAt("oqfifo", InputDelay, load)
	check(&v, s2 <= iq*1.05+0.1, "speedup 2 delay %.2f above pure IQ %.2f", s2, iq)
	check(&v, s2 <= oqd*1.4+0.5, "speedup 2 delay %.2f far off the OQ curve %.2f", s2, oqd)
	return v
}

// CheckIndustry: ESLIP beats iSLIP's unicast copies on multicast
// latency, FIFOMS beats ESLIP (whose single multicast FIFO
// reintroduces HOL blocking among multicast packets).
func (t *Table) CheckIndustry() []string {
	var v []string
	const load = 0.6
	f := t.metricAt("fifoms", InputDelay, load)
	e := t.metricAt("eslip", InputDelay, load)
	i := t.metricAt("islip", InputDelay, load)
	check(&v, f <= e*1.05+0.1, "fifoms delay %.2f above eslip %.2f at load %.2f", f, e, load)
	check(&v, e <= i, "eslip delay %.2f above islip %.2f — multicast queue gave no benefit", e, i)
	return v
}

// CheckMemory: Section IV.B's space claims — FIFOMS's shared data cell
// keeps its byte footprint a small fraction of iSLIP's copies and no
// worse than OQ's per-queue copies at moderate load.
func (t *Table) CheckMemory() []string {
	var v []string
	const load = 0.7
	f := t.metricAt("fifoms", BufferBytes, load)
	i := t.metricAt("islip", BufferBytes, load)
	o := t.metricAt("oqfifo", BufferBytes, load)
	check(&v, i >= 3*f, "islip bytes %.0f not >> fifoms %.0f", i, f)
	check(&v, f <= o*1.1+16, "fifoms bytes %.0f above oqfifo %.0f", f, o)
	return v
}

// CheckHotspot: one output at the target load with cold outputs at a
// quarter of it is easily admissible — every architecture must hold it
// (the x-axis is the HOT output's load, so average load is low), with
// FIFOMS keeping its multicast delay advantage over iSLIP.
func (t *Table) CheckHotspot() []string {
	var v []string
	for _, algo := range []string{"fifoms", "tatra", "islip", "oqfifo"} {
		check(&v, t.stableAt(algo, 0.9), "%s unstable at hotspot load 0.9", algo)
	}
	f, i := t.metricAt("fifoms", InputDelay, 0.8), t.metricAt("islip", InputDelay, 0.8)
	check(&v, f <= i, "fifoms hotspot delay %.2f above islip %.2f", f, i)
	o := t.metricAt("oqfifo", InputDelay, 0.8)
	check(&v, f <= o*1.3+0.2, "fifoms hotspot delay %.2f far above oqfifo %.2f", f, o)
	return v
}

// CheckMixed: under a half-unicast mix, the single-FIFO multicast
// schedulers hit HOL blocking before FIFOMS does.
func (t *Table) CheckMixed() []string {
	var v []string
	check(&v, t.stableAt("fifoms", 0.9), "fifoms unstable at mixed load 0.9")
	check(&v, t.unstableByLoad("tatra", 0.95), "tatra never saturated under mixed traffic")
	check(&v, t.stableAt("tatra", 0.5), "tatra unstable at mixed load 0.5")
	f, i := t.metricAt("fifoms", InputDelay, 0.6), t.metricAt("islip", InputDelay, 0.6)
	check(&v, f <= i, "fifoms mixed delay %.2f above islip %.2f", f, i)
	return v
}
