package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"voqsim/internal/hw"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

// The scaling experiment backs Section IV.C's complexity analysis:
// FIFOMS converges in far fewer than N rounds on average, so with
// parallel comparator trees (O(log N) gate depth per round) the
// per-slot scheduling latency grows only logarithmically in practice,
// while a serial implementation pays O(N) per round.

// ScalingPoint is the measurement at one switch size.
type ScalingPoint struct {
	N          int     `json:"n"`
	MeanRounds float64 `json:"mean_rounds"`
	MaxRounds  float64 `json:"max_rounds"` // largest per-slot rounds observed
	InDelay    float64 `json:"in_delay"`

	// Latency estimates under the default hardware model.
	TreeSlotPs   float64 `json:"tree_slot_ps"`   // parallel comparator trees
	SerialSlotPs float64 `json:"serial_slot_ps"` // serial comparators
}

// ScalingConfig sets up the sweep over switch sizes.
type ScalingConfig struct {
	// Sizes are the switch sizes to measure (default 4..64 doubling).
	Sizes []int
	// Load is the effective load at each size (default 0.7).
	Load float64
	// B is the Bernoulli per-output probability (default 0.2).
	B float64
	// Slots per point (default 100k), Seed, Workers as in Sweep.
	Slots   int64
	Seed    uint64
	Workers int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4, 8, 16, 32, 64}
	}
	if c.Load <= 0 {
		c.Load = 0.7
	}
	if c.B <= 0 {
		c.B = 0.2
	}
	if c.Slots <= 0 {
		c.Slots = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 2004
	}
	return c
}

// Scaling measures FIFOMS convergence rounds and estimated hardware
// scheduling latency across switch sizes at a fixed effective load.
func Scaling(cfg ScalingConfig) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]ScalingPoint, len(cfg.Sizes))
	errs := make([]error, len(cfg.Sizes))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, n := range cfg.Sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = scalingPoint(cfg, n, uint64(i))
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

func scalingPoint(cfg ScalingConfig, n int, idx uint64) (ScalingPoint, error) {
	pat, err := traffic.BernoulliAtLoad(cfg.Load, cfg.B, n)
	if err != nil {
		return ScalingPoint{}, fmt.Errorf("experiment: scaling at N=%d: %w", n, err)
	}
	seed := cfg.Seed ^ (idx+1)*0x9e3779b97f4a7c15
	sw := FIFOMS.New(n, xrand.New(seed).Split("switch", 0))
	res := switchsim.New(sw, pat, switchsim.Config{Slots: cfg.Slots, Seed: seed},
		xrand.New(seed).Split("traffic", 0)).Run("fifoms")

	lat := hw.DefaultLatency
	return ScalingPoint{
		N:            n,
		MeanRounds:   res.Rounds.Mean,
		MaxRounds:    res.Rounds.Max,
		InDelay:      res.InputDelay.Mean,
		TreeSlotPs:   lat.SlotLatencyPs(n, res.Rounds.Mean),
		SerialSlotPs: res.Rounds.Mean * float64(lat.SerialRoundLatencyPs(n)),
	}, nil
}

// FormatScaling renders the scaling points as an aligned table.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %11s %10s %14s %15s\n",
		"N", "mean rounds", "max rounds", "in delay", "tree ps/slot", "serial ps/slot")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %12.3f %11.0f %10.3f %14.0f %15.0f\n",
			p.N, p.MeanRounds, p.MaxRounds, p.InDelay, p.TreeSlotPs, p.SerialSlotPs)
	}
	return b.String()
}

// CheckScaling verifies Section IV.C's claims on the measured points:
// average rounds stay far below N (and essentially flat), and worst
// case rounds never exceed N.
func CheckScaling(points []ScalingPoint) []string {
	var v []string
	for _, p := range points {
		check(&v, p.MeanRounds <= float64(p.N)/2,
			"N=%d: mean rounds %.2f not << N", p.N, p.MeanRounds)
		check(&v, p.MaxRounds <= float64(p.N),
			"N=%d: max rounds %.0f exceeds the N-round bound", p.N, p.MaxRounds)
	}
	if len(points) >= 2 {
		first, last := points[0], points[len(points)-1]
		growth := last.MeanRounds / first.MeanRounds
		sizeGrowth := float64(last.N) / float64(first.N)
		check(&v, growth < sizeGrowth/2,
			"mean rounds grew %.1fx over a %.0fx size increase — not sub-linear", growth, sizeGrowth)
	}
	return v
}
