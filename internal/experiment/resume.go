package experiment

import (
	"fmt"
	"os"
	"path/filepath"

	"voqsim/internal/core"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
)

// Mid-sweep resume (Sweep.CheckpointDir). A resumable sweep keeps two
// files per grid point under the checkpoint directory:
//
//	<sweep>-<algo>-l<li>.json   the finished point, verbatim
//	<sweep>-<algo>-l<li>.snap   the running point's latest snapshot
//
// A finished point is loaded from its JSON instead of re-simulated
// (float64 survives Go's JSON round-trip exactly, so the assembled
// table is bit-identical to an uninterrupted sweep). An interrupted
// point restores its snapshot and continues from the checkpointed
// slot, which the differential tests in internal/switchsim pin to be
// bit-identical to never having stopped. Checkpoint writes are
// best-effort: a failing disk degrades the sweep to non-resumable, it
// never changes results. Unusable artifacts (older format version,
// corruption, a config drift that changes the point's identity) are
// detected by the snapshot codec and the point silently re-runs from
// slot 0.
//
// The directory is keyed by sweep name, algorithm and load index
// only, so it must not be shared between sweeps with different
// parameters: a changed grid would be caught by the snapshot identity
// header, but a stale finished-point JSON is trusted as saved.

// pointPaths returns the finished-result and mid-run snapshot paths
// of one grid cell.
func (s *Sweep) pointPaths(ai, li int) (doneFile, snapFile string) {
	base := filepath.Join(s.CheckpointDir,
		fmt.Sprintf("%s-%s-l%02d", s.Name, s.Algorithms[ai].Name, li))
	return base + ".json", base + ".snap"
}

// runPointResumable is runPoint with the checkpoint protocol around
// the simulation.
func (s *Sweep) runPointResumable(ai, li int, pt Point, pat traffic.Pattern, pool *core.ArenaPool) Point {
	algo := s.Algorithms[ai]
	_, snapFile := s.pointPaths(ai, li)

	if saved, ok := s.LoadFinishedPoint(ai, li); ok {
		return saved
	}
	// Absent or unreadable finished point: run (or resume) it.

	r, ck, release := s.pointRunner(ai, li, pat, pool)
	if blob, err := os.ReadFile(snapFile); err == nil {
		if err := r.Restore(algo.Name, blob); err != nil {
			// A failed restore may leave the runner partially loaded;
			// rebuild it — recycling the arena, which Get resets — and
			// run the point from slot 0.
			release()
			r, ck, release = s.pointRunner(ai, li, pat, pool)
		}
	}
	defer release()

	// Architectures without snapshot support still participate in a
	// resumable sweep: their points run whole and are saved as finished
	// JSON, they just cannot be interrupted mid-run.
	var every int64
	var sink switchsim.CheckpointFunc
	if r.Snapshottable() == nil {
		every = s.CheckpointEvery
		if every <= 0 {
			every = r.Config().Slots / 10
			if every <= 0 {
				every = 1
			}
		}
		sink = func(_ int64, blob []byte) error {
			writeFileAtomic(snapFile, blob) // best-effort, see package comment
			return nil
		}
	}
	res, err := r.RunWithCheckpoints(algo.Name, every, sink)
	if err != nil {
		// Unreachable with a never-failing sink, but keep the point
		// well-formed if the invariant ever changes.
		pt.Skipped = err.Error()
		return pt
	}
	pt.Results = res
	if ck != nil {
		if cerr := ck.Err(); cerr != nil {
			pt.CheckError = cerr.Error()
		}
	}
	s.SaveFinishedPoint(ai, li, pt) // best-effort, see package comment
	return pt
}

// writeFileAtomic writes data under a temporary name and renames it
// into place, so readers never observe a half-written file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
