package experiment

import (
	"encoding/json"
	"fmt"
	"os"

	"voqsim/internal/core"
	"voqsim/internal/switchsim"
)

// Single-point execution: the leasing seam behind the distributed
// sweep backend (internal/dsweep). A sweep's grid points are
// independent by construction — every point derives its seeds from
// its own coordinates — so any scheduler that runs each point exactly
// once and places it at its coordinates reproduces Sweep.Run bit for
// bit. RunPointAt exposes one point as a unit of work, with the
// checkpoint protocol of resume.go redirected from disk files to
// caller-supplied blobs, so a worker process can stream snapshots to a
// remote coordinator and a replacement worker can resume a dead
// worker's point mid-run.

// PointRun configures a single-point run.
type PointRun struct {
	// Resume, when non-empty, is a snapshot blob from a previous run
	// of the same point; the simulation continues from the
	// checkpointed slot. A blob the snapshot codec rejects (version
	// drift, corruption, a different point's identity) makes the point
	// silently re-run from slot 0, mirroring the disk protocol.
	Resume []byte
	// CheckpointEvery is the snapshot cadence in slots; 0 defaults to
	// a tenth of the point's slot budget. Only used with Checkpoint.
	CheckpointEvery int64
	// Checkpoint, when non-nil, receives a snapshot blob every
	// CheckpointEvery slots. The blob is freshly allocated each call
	// and may be retained. Architectures without snapshot support run
	// whole without checkpointing, exactly as in a resumable sweep.
	Checkpoint func(slot int64, blob []byte)
	// Pool optionally recycles arenas across points run by the same
	// worker, as the sharded engine does.
	Pool *core.ArenaPool
}

// RunPointAt simulates the single grid cell (ai, li) and returns its
// measured point. The result is bit-identical to the corresponding
// cell of Sweep.Run's table — resumed or not — which the distributed
// determinism tests pin. The sweep's CheckpointDir is ignored here:
// persistence policy belongs to the caller.
func (s *Sweep) RunPointAt(ai, li int, pr PointRun) (Point, error) {
	if err := s.Validate(); err != nil {
		return Point{}, err
	}
	if s.Replications > 1 {
		// The leasing protocol streams and resumes one simulation per
		// point; a merged-replication point has R of them. Replicated
		// sweeps run in-process (runReplicated), not under a lease.
		return Point{}, fmt.Errorf("experiment: sweep %q: replicated sweeps cannot run under point leases", s.Name)
	}
	if ai < 0 || ai >= len(s.Algorithms) || li < 0 || li >= len(s.Loads) {
		return Point{}, fmt.Errorf("experiment: point (%d,%d) outside %dx%d grid", ai, li, len(s.Algorithms), len(s.Loads))
	}
	algo := s.Algorithms[ai]
	pt := Point{Algorithm: algo.Name, Load: s.Loads[li]}

	pat, err := s.Pattern(s.Loads[li], s.N)
	if err != nil {
		pt.Skipped = err.Error()
		return pt, nil
	}

	r, ck, release := s.pointRunner(ai, li, pat, pr.Pool)
	if len(pr.Resume) > 0 {
		if err := r.Restore(algo.Name, pr.Resume); err != nil {
			// A failed restore may leave the runner partially loaded;
			// rebuild it and run the point from slot 0 (see resume.go).
			release()
			r, ck, release = s.pointRunner(ai, li, pat, pr.Pool)
		}
	}
	defer release()

	var every int64
	var sink switchsim.CheckpointFunc
	if pr.Checkpoint != nil && r.Snapshottable() == nil {
		every = pr.CheckpointEvery
		if every <= 0 {
			every = r.Config().Slots / 10
			if every <= 0 {
				every = 1
			}
		}
		sink = func(slot int64, blob []byte) error {
			pr.Checkpoint(slot, append([]byte(nil), blob...))
			return nil
		}
	}
	res, err := r.RunWithCheckpoints(algo.Name, every, sink)
	if err != nil {
		// Unreachable with a never-failing sink; keep the point
		// well-formed if the invariant ever changes.
		pt.Skipped = err.Error()
		return pt, nil
	}
	pt.Results = res
	if ck != nil {
		if cerr := ck.Err(); cerr != nil {
			pt.CheckError = cerr.Error()
		}
	}
	return pt, nil
}

// LoadFinishedPoint reads the grid cell's finished-point JSON from the
// sweep's CheckpointDir, reporting ok=false when the directory is
// unset, the file is absent, or it does not decode. Float64 survives
// Go's JSON round-trip exactly, so a loaded point is bit-identical to
// the run that saved it.
func (s *Sweep) LoadFinishedPoint(ai, li int) (Point, bool) {
	if s.CheckpointDir == "" {
		return Point{}, false
	}
	doneFile, _ := s.pointPaths(ai, li)
	data, err := os.ReadFile(doneFile)
	if err != nil {
		return Point{}, false
	}
	var saved Point
	if err := json.Unmarshal(data, &saved); err != nil {
		return Point{}, false
	}
	return saved, true
}

// SaveFinishedPoint writes the grid cell's finished-point JSON into
// the sweep's CheckpointDir (creating it if needed) and removes any
// stale mid-run snapshot, so a later run of the same sweep loads the
// point instead of re-simulating it. A no-op without a CheckpointDir.
func (s *Sweep) SaveFinishedPoint(ai, li int, pt Point) error {
	if s.CheckpointDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	doneFile, snapFile := s.pointPaths(ai, li)
	data, err := json.MarshalIndent(pt, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(doneFile, append(data, '\n')); err != nil {
		return err
	}
	os.Remove(snapFile)
	return nil
}
