package experiment

import (
	"fmt"
	"math"

	"voqsim/internal/core"
	"voqsim/internal/stats"
	"voqsim/internal/switchsim"
	"voqsim/internal/xrand"
)

// Independent replications: the statistically rigorous way to put a
// confidence interval on a simulation estimate. One long run gives a
// point estimate whose naive standard error ignores autocorrelation;
// R replications with independent seeds give R independent estimates,
// and the classical interval over those is valid. The shape checks
// use single runs for speed; Replicate exists for anyone who needs
// defensible error bars (and for the engine's own convergence tests).

// ReplicateConfig describes the replicated experiment.
type ReplicateConfig struct {
	Algorithm Algorithm
	Pattern   PatternFunc
	Load      float64
	N         int
	// Replications is the number of independent runs (default 10).
	Replications int
	// Slots per replication. Zero selects the default (50k); a
	// negative value is a configuration error Replicate rejects.
	Slots int64
	// Seed is the base; replication r uses an independent derivation.
	Seed uint64
	// Workers caps how many replications run concurrently; zero or
	// negative uses runtime.GOMAXPROCS(0), i.e. one per CPU.
	Workers int
}

func (c ReplicateConfig) withDefaults() ReplicateConfig {
	if c.Replications <= 0 {
		c.Replications = 10
	}
	if c.Slots == 0 {
		c.Slots = 50_000
	}
	if c.Seed == 0 {
		c.Seed = 2004
	}
	return c
}

// Estimate is a replicated point estimate with a 95% confidence
// half-width computed over the replication means.
type Estimate struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width_95"`
	R         int64   `json:"replications"`
}

func estimate(w *stats.Welford) Estimate {
	hw := math.NaN()
	if w.Count() >= 2 {
		hw = 1.96 * w.StdErr()
	}
	return Estimate{Mean: w.Mean(), HalfWidth: hw, R: w.Count()}
}

// Covers reports whether the interval contains v.
func (e Estimate) Covers(v float64) bool {
	if math.IsNaN(e.HalfWidth) {
		return false
	}
	return math.Abs(e.Mean-v) <= e.HalfWidth
}

// ReplicateSummary aggregates the replications.
type ReplicateSummary struct {
	Algorithm string   `json:"algorithm"`
	Load      float64  `json:"load"`
	Unstable  int      `json:"unstable_replications"`
	InDelay   Estimate `json:"in_delay"`
	OutDelay  Estimate `json:"out_delay"`
	AvgQueue  Estimate `json:"avg_queue"`
	// Merged folds all R runs into one Results with
	// switchsim.MergeResults — the pooled view (counters summed,
	// moments combined), complementing the interval estimates above,
	// which stay defined over the per-replication means.
	Merged switchsim.Results   `json:"merged"`
	Runs   []switchsim.Results `json:"runs"`
}

// Replicate runs the configured experiment R times with independent
// seeds and returns interval estimates over the stable replications.
func Replicate(cfg ReplicateConfig) (*ReplicateSummary, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 || cfg.Pattern == nil || cfg.Algorithm.New == nil {
		return nil, fmt.Errorf("experiment: incomplete replicate config")
	}
	if cfg.Slots < 0 {
		return nil, fmt.Errorf("experiment: negative slot budget %d", cfg.Slots)
	}
	pat, err := cfg.Pattern(cfg.Load, cfg.N)
	if err != nil {
		return nil, err
	}

	// Replications are shards of the same engine that runs sweeps: each
	// derives its seed from its own index, so results are independent
	// of worker count and scheduling order.
	runs := make([]switchsim.Results, cfg.Replications)
	runShards(cfg.Workers, cfg.Replications, nil, func(rep int, pool *core.ArenaPool) string {
		seed := cfg.Seed ^ (uint64(rep)+1)*0xbf58476d1ce4e5b9
		sw := cfg.Algorithm.New(cfg.N, xrand.New(seed).Split("switch", 0))
		release := adoptPooledArena(sw, cfg.N, pool)
		runs[rep] = switchsim.New(sw, pat,
			switchsim.Config{Slots: cfg.Slots, Seed: seed},
			xrand.New(seed).Split("traffic", 0)).Run(cfg.Algorithm.Name)
		release()
		return fmt.Sprintf("%s rep %d", cfg.Algorithm.Name, rep)
	})

	sum := &ReplicateSummary{
		Algorithm: cfg.Algorithm.Name, Load: cfg.Load, Runs: runs,
		Merged: switchsim.MergeResults(runs),
	}
	var in, out, q stats.Welford
	for _, r := range runs {
		if r.Unstable {
			sum.Unstable++
			continue
		}
		in.Add(r.InputDelay.Mean)
		out.Add(r.OutputDelay.Mean)
		q.Add(r.AvgQueue)
	}
	sum.InDelay = estimate(&in)
	sum.OutDelay = estimate(&out)
	sum.AvgQueue = estimate(&q)
	return sum, nil
}
