package experiment

import (
	"math"
	"testing"

	"voqsim/internal/switchsim"
	"voqsim/internal/xrand"
)

func testRoot() *xrand.Rand { return xrand.New(1) }

// shapeOptions are the reduced budgets at which the full figure shape
// checks are exercised in tests. 20k slots is enough for every
// qualitative claim to hold with margin (calibrated empirically); the
// full-budget runs live in `voqfigs` and the benchmarks.
func shapeOptions() Options {
	return Options{Slots: 20_000, Seed: 2004}
}

func runShape(t *testing.T, sw *Sweep) *Table {
	t.Helper()
	tbl, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func assertShape(t *testing.T, tbl *Table) {
	t.Helper()
	for _, v := range tbl.Check() {
		t.Errorf("%s: %s", tbl.Name, v)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	assertShape(t, runShape(t, Fig4(shapeOptions())))
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	assertShape(t, runShape(t, Fig5(shapeOptions())))
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	assertShape(t, runShape(t, Fig6(shapeOptions())))
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	assertShape(t, runShape(t, Fig7(shapeOptions())))
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	assertShape(t, runShape(t, Fig8(shapeOptions())))
}

func TestAblationSplittingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	// Fanout splitting must not hurt, and the no-splitting variant must
	// saturate earlier or queue more at high load (the conclusion's
	// "necessary for high throughput" claim).
	tbl := runShape(t, AblationSplitting(shapeOptions()))
	split := tbl.metricAt("fifoms", InputDelay, 0.8)
	whole := tbl.metricAt("fifoms-nosplit", InputDelay, 0.8)
	if !(whole >= split || math.IsInf(whole, 1)) {
		t.Errorf("no-splitting beat splitting at load 0.8: %.2f vs %.2f", whole, split)
	}
	if !tbl.stableAt("fifoms", 0.9) {
		t.Error("fifoms unstable at 0.9 in ablation")
	}
}

func TestAblationRoundsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shape checks take seconds")
	}
	// More rounds never hurt: delay at load 0.8 must be non-increasing
	// in the iteration budget (within noise).
	tbl := runShape(t, AblationRounds(shapeOptions()))
	r1 := tbl.metricAt("fifoms-r1", InputDelay, 0.8)
	full := tbl.metricAt("fifoms", InputDelay, 0.8)
	if full > r1*1.1+0.2 {
		t.Errorf("full convergence (%.2f) worse than one round (%.2f)", full, r1)
	}
}

// TestCheckersFlagBrokenTables builds a synthetic table with inverted
// results and verifies the fig4 checker actually fires — guarding
// against vacuous shape checks.
func TestCheckersFlagBrokenTables(t *testing.T) {
	loads := []float64{0.6, 0.9, 0.95}
	tbl := &Table{
		Name: "fig4", Title: "synthetic", N: 16,
		Loads: loads,
		Algos: []string{"fifoms", "tatra", "islip", "oqfifo"},
	}
	mk := func(algo string, delay, queue float64, unstable bool) []Point {
		pts := make([]Point, len(loads))
		for i, l := range loads {
			pts[i] = Point{Algorithm: algo, Load: l, Results: switchsim.Results{
				Algorithm:  algo,
				InputDelay: switchsim.Summary{Mean: delay},
				AvgQueue:   queue,
				Unstable:   unstable,
			}}
		}
		return pts
	}
	// Inverted world: fifoms slow, fat and unstable; tatra perfect.
	tbl.Points = [][]Point{
		mk("fifoms", 100, 100, true),
		mk("tatra", 1, 0.1, false),
		mk("islip", 1, 0.1, false),
		mk("oqfifo", 1, 0.1, false),
	}
	if len(tbl.CheckFig4()) == 0 {
		t.Fatal("fig4 checker passed an inverted table")
	}
}

func TestPointAtPicksNearestLoad(t *testing.T) {
	tbl := smallTable(t) // loads 0.2, 0.6
	pt, err := tbl.pointAt("fifoms", 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Load != 0.6 {
		t.Fatalf("nearest load = %v, want 0.6", pt.Load)
	}
}
