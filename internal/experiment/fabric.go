package experiment

import (
	"fmt"

	"voqsim/internal/fabric"
	"voqsim/internal/switchsim"
	"voqsim/internal/xrand"
)

// WithTopology lifts a single-switch algorithm to a multi-stage
// fabric: every node of the topology runs a fresh instance of the
// algorithm's switch, wired by the topology's bounded links, and the
// compound behaves as one switchsim.Switch of Ingress() ports. Node i
// is seeded with the run root's Split("node", i), so fabric runs are
// as reproducible as single-switch runs.
//
// The topology must be square (ingress count == egress count) because
// the engine drives one N for both sides; Runner calls New with that
// N, so sweeps over a topology algorithm must use N = top.Ingress().
func WithTopology(algo Algorithm, top *fabric.Topology, cfg fabric.Config) (Algorithm, error) {
	if top.Ingress() != top.Egress() {
		return Algorithm{}, fmt.Errorf("experiment: topology %s has %d ingress but %d egress ports; the engine needs a square fabric",
			top.Name(), top.Ingress(), top.Egress())
	}
	inner := algo.New
	return Algorithm{
		Name: algo.Name + "@" + top.Name(),
		New: func(n int, root *xrand.Rand) switchsim.Switch {
			if n != top.Ingress() {
				panic(fmt.Sprintf("experiment: %d-port run of the %d-ingress topology %s",
					n, top.Ingress(), top.Name()))
			}
			f, err := fabric.New(top, cfg, func(ports int, r *xrand.Rand) fabric.Node {
				return inner(ports, r)
			}, root)
			if err != nil {
				// New validates only the node factory's port counts,
				// which are the topology's own — unreachable for a
				// Build()-validated topology.
				panic(err)
			}
			return f
		},
	}, nil
}
