package experiment

import (
	"testing"

	"voqsim/internal/traffic"
)

// TestCheckedSweep pins that a checked sweep (a) reports no invariant
// failures on the real roster and (b) measures bit-identically to the
// unchecked sweep — the checker must stay passive through the whole
// experiment pipeline.
func TestCheckedSweep(t *testing.T) {
	mk := func(check bool) *Sweep {
		return &Sweep{
			Name:  "checked",
			Title: "checked sweep smoke",
			N:     4,
			Loads: []float64{0.4, 0.8},
			Pattern: func(load float64, n int) (traffic.Pattern, error) {
				return traffic.BernoulliAtLoad(load, 0.3, n)
			},
			Algorithms: []Algorithm{FIFOMS, WBA, ESLIP, PIM},
			Slots:      400,
			Seed:       99,
			Check:      check,
		}
	}
	checked, err := mk(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if fails := checked.CheckFailures(); len(fails) != 0 {
		t.Fatalf("checked sweep flagged violations: %v", fails)
	}
	plain, err := mk(false).Run()
	if err != nil {
		t.Fatal(err)
	}
	for ai := range plain.Points {
		for li := range plain.Points[ai] {
			if checked.Points[ai][li].Results != plain.Points[ai][li].Results {
				t.Fatalf("point %s@%v diverged under checking:\nchecked %+v\nplain   %+v",
					plain.Algos[ai], plain.Loads[li],
					checked.Points[ai][li].Results, plain.Points[ai][li].Results)
			}
		}
	}
}
