package experiment

import (
	"reflect"
	"strings"
	"testing"

	"voqsim/internal/traffic"
)

func replicatedSweep(workers, reps int) *Sweep {
	return &Sweep{
		Name: "reps", Title: "replicated", N: 8,
		Loads:      []float64{0.2, 0.5},
		Algorithms: []Algorithm{FIFOMS, OQFIFO},
		Slots:      2000, Seed: 7, Workers: workers,
		Replications: reps,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.25, n)
		},
	}
}

// TestReplicatedSweepDeterminism pins the tentpole contract: a
// replicated sweep's merged table is byte-identical for any worker
// count — the R runs land on the work-stealing pool in any order, but
// each writes its own slot and the merge folds in replication order.
func TestReplicatedSweepDeterminism(t *testing.T) {
	mk := func(workers int) *Table {
		tbl, err := replicatedSweep(workers, 3).Run()
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a := mk(1)
	for _, workers := range []int{2, 4} {
		b := mk(workers)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("worker count %d changed the replicated table:\n%+v\n%+v", workers, a, b)
		}
	}
}

// TestReplicatedSweepMergesRuns checks the merged point against the
// individual replications run by hand: replication 0 must use the
// legacy point seed (so the merged point's Seed matches a plain
// sweep's), counters must sum, and every per-replication run must be
// reproducible from its pinned (seed, ai, li, rep) derivation.
func TestReplicatedSweepMergesRuns(t *testing.T) {
	const reps = 3
	tbl, err := replicatedSweep(2, reps).Run()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := replicatedSweep(2, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := replicatedSweep(1, reps)
	for ai := range tbl.Points {
		for li, pt := range tbl.Points[ai] {
			want := plain.Points[ai][li]
			if pt.Results.Seed != want.Results.Seed {
				t.Fatalf("[%d][%d] merged Seed %d, legacy point seed %d", ai, li, pt.Results.Seed, want.Results.Seed)
			}
			var slots, offered int64
			for rep := 0; rep < reps; rep++ {
				one := s.runPointRep(ai, li, rep, nil)
				slots += one.Results.Slots
				offered += one.Results.OfferedPackets
				if rep == 0 && !reflect.DeepEqual(one.Results, want.Results) {
					t.Fatalf("[%d][%d] replication 0 differs from the plain sweep point:\n%+v\n%+v",
						ai, li, one.Results, want.Results)
				}
			}
			if pt.Results.Slots != slots || pt.Results.OfferedPackets != offered {
				t.Fatalf("[%d][%d] merged counters (slots %d, offered %d) != per-rep sums (%d, %d)",
					ai, li, pt.Results.Slots, pt.Results.OfferedPackets, slots, offered)
			}
			if c := pt.Results.InputDelay.Count; c == 0 {
				t.Fatalf("[%d][%d] merged input-delay count is zero", ai, li)
			}
		}
	}
}

// TestReplicatedSweepRejections pins the flag interlocks: replicated
// sweeps cannot be checkpointed/resumed and cannot run under the
// distributed point-leasing seam.
func TestReplicatedSweepRejections(t *testing.T) {
	s := replicatedSweep(1, 3)
	s.CheckpointDir = t.TempDir()
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "checkpointed") {
		t.Fatalf("checkpointed replicated sweep accepted (err=%v)", err)
	}
	s = replicatedSweep(1, 3)
	if _, err := s.RunPointAt(0, 0, PointRun{}); err == nil || !strings.Contains(err.Error(), "lease") {
		t.Fatalf("replicated point lease accepted (err=%v)", err)
	}
}
