package experiment

import (
	"fmt"
	"math"
)

// Shape checking: the reproduction cannot match the paper's absolute
// numbers (different tie-break randomness, different slot budgets),
// but the qualitative claims of Section V — who wins, where the
// saturation knees fall — must hold. Each figure has a checker that
// returns a list of violated claims (empty means the shape holds).
// The checkers are used by the integration tests and by `voqfigs`,
// which records their verdicts in EXPERIMENTS.md form.

// pointAt returns the point of algo at the load closest to want.
func (t *Table) pointAt(algo string, want float64) (Point, error) {
	bestLI, bestDist := -1, math.Inf(1)
	for li, l := range t.Loads {
		if d := math.Abs(l - want); d < bestDist {
			bestLI, bestDist = li, d
		}
	}
	if bestLI < 0 {
		return Point{}, fmt.Errorf("experiment: table %q has no loads", t.Name)
	}
	return t.Get(algo, bestLI)
}

// check appends a formatted violation when cond is false.
func check(violations *[]string, cond bool, format string, args ...any) {
	if !cond {
		*violations = append(*violations, fmt.Sprintf(format, args...))
	}
}

// stableAt reports whether algo is stable at the load nearest want.
func (t *Table) stableAt(algo string, want float64) bool {
	pt, err := t.pointAt(algo, want)
	if err != nil {
		return false
	}
	return pt.Skipped == "" && !pt.Results.Unstable
}

// unstableByLoad reports whether algo has gone unstable at or before
// the load nearest want.
func (t *Table) unstableByLoad(algo string, want float64) bool {
	for li, l := range t.Loads {
		if l > want+1e-9 {
			break
		}
		pt, err := t.Get(algo, li)
		if err != nil {
			return false
		}
		if pt.Results.Unstable {
			return true
		}
	}
	return false
}

// metricAt returns metric m of algo at the load nearest want.
func (t *Table) metricAt(algo string, m Metric, want float64) float64 {
	pt, err := t.pointAt(algo, want)
	if err != nil {
		return math.NaN()
	}
	return m.ValueOf(pt)
}

// CheckFig4 verifies the Bernoulli-traffic claims: FIFOMS tracks
// OQFIFO's delay and stays stable to high load; TATRA hits its HOL
// knee around 0.8; iSLIP pays a large multicast delay penalty; FIFOMS
// needs the least buffer space.
func (t *Table) CheckFig4() []string {
	var v []string
	const mid = 0.6
	check(&v, t.stableAt("fifoms", 0.9), "fifoms unstable at load 0.9")
	check(&v, t.stableAt("oqfifo", 0.95), "oqfifo unstable at load 0.95")
	check(&v, t.unstableByLoad("tatra", 0.95), "tatra never saturated by load 0.95 (HOL knee missing)")
	check(&v, t.stableAt("tatra", 0.6), "tatra already unstable at load 0.6")

	fifoDelay := t.metricAt("fifoms", InputDelay, mid)
	oqDelay := t.metricAt("oqfifo", InputDelay, mid)
	islipDelay := t.metricAt("islip", InputDelay, mid)
	check(&v, fifoDelay <= 2.5*oqDelay,
		"fifoms input delay %.2f not close to oqfifo %.2f at load %.2f", fifoDelay, oqDelay, mid)
	check(&v, islipDelay >= 1.5*fifoDelay,
		"islip input delay %.2f lacks the multicast penalty vs fifoms %.2f", islipDelay, fifoDelay)

	for _, other := range []string{"tatra", "islip", "oqfifo"} {
		fo, oo := t.metricAt("fifoms", AvgQueue, mid), t.metricAt(other, AvgQueue, mid)
		check(&v, fo <= oo*1.1+0.2, "fifoms avg queue %.2f above %s's %.2f at load %.2f", fo, other, oo, mid)
	}
	return v
}

// CheckFig5 verifies the convergence claims: both schedulers converge
// in far fewer than N rounds, are insensitive to load while stable,
// and take roughly the same number of rounds.
func (t *Table) CheckFig5() []string {
	var v []string
	n := float64(t.N)
	for _, algo := range []string{"fifoms", "islip"} {
		lo, hi := t.metricAt(algo, Rounds, 0.1), t.metricAt(algo, Rounds, 0.7)
		check(&v, lo >= 1 && lo <= n/2, "%s rounds %.2f at load 0.1 implausible", algo, lo)
		check(&v, hi <= n/2, "%s rounds %.2f at load 0.7 not << N", algo, hi)
		check(&v, hi <= lo*3+1, "%s rounds too load-sensitive: %.2f -> %.2f", algo, lo, hi)
	}
	f, i := t.metricAt("fifoms", Rounds, 0.5), t.metricAt("islip", Rounds, 0.5)
	check(&v, math.Abs(f-i) <= 0.5*math.Max(f, i)+0.5,
		"fifoms (%.2f) and islip (%.2f) rounds diverge at load 0.5", f, i)
	return v
}

// CheckFig6 verifies the pure-unicast claims: TATRA saturates near the
// 0.586 HOL bound; FIFOMS matches iSLIP's delay and stays stable to
// high load with the smallest buffers.
func (t *Table) CheckFig6() []string {
	var v []string
	check(&v, t.unstableByLoad("tatra", 0.7), "tatra not saturated by 0.7 under unicast (theory: 0.586)")
	check(&v, t.stableAt("tatra", 0.5), "tatra unstable at 0.5, below the HOL bound")
	check(&v, t.stableAt("fifoms", 0.9), "fifoms unstable at 0.9 under unicast")
	check(&v, t.stableAt("islip", 0.9), "islip unstable at 0.9 under unicast")

	const mid = 0.6
	f, i := t.metricAt("fifoms", InputDelay, mid), t.metricAt("islip", InputDelay, mid)
	check(&v, f <= 1.5*i+0.5, "fifoms unicast delay %.2f far above islip %.2f", f, i)
	fq, iq := t.metricAt("fifoms", AvgQueue, mid), t.metricAt("islip", AvgQueue, mid)
	check(&v, fq <= iq*1.1+0.2, "fifoms unicast avg queue %.2f above islip %.2f", fq, iq)
	return v
}

// CheckFig7 verifies the bounded-fanout claims: FIFOMS has the
// shortest delay of the input-queued schedulers and beats even OQFIFO
// on buffer space; TATRA does better than under unicast.
func (t *Table) CheckFig7() []string {
	var v []string
	const mid = 0.6
	f := t.metricAt("fifoms", InputDelay, mid)
	for _, other := range []string{"tatra", "islip"} {
		o := t.metricAt(other, InputDelay, mid)
		check(&v, f <= o*1.1+0.2, "fifoms delay %.2f not the best input-queued (vs %s %.2f)", f, other, o)
	}
	fq, oq := t.metricAt("fifoms", AvgQueue, 0.7), t.metricAt("oqfifo", AvgQueue, 0.7)
	check(&v, fq <= oq*1.1+0.2, "fifoms avg queue %.2f above oqfifo %.2f at 0.7", fq, oq)
	check(&v, t.stableAt("tatra", 0.7), "tatra unstable at 0.7 despite maxFanout=8 (should beat its unicast knee)")
	return v
}

// CheckFig8 verifies the burst-traffic claims: iSLIP saturates very
// early; FIFOMS beats TATRA on delay but not OQFIFO; FIFOMS has the
// smallest queues; everyone saturates earlier than under Bernoulli.
func (t *Table) CheckFig8() []string {
	var v []string
	// The paper: "iSLIP saturates at a so small value that it cannot
	// even be seen in the first two graphs" — its delay is an order of
	// magnitude above everyone else's already at low load, and it goes
	// unstable well before the others.
	fLow, iLow := t.metricAt("fifoms", InputDelay, 0.2), t.metricAt("islip", InputDelay, 0.2)
	check(&v, iLow >= 4*fLow, "islip burst delay %.2f at load 0.2 not >> fifoms %.2f", iLow, fLow)
	check(&v, t.unstableByLoad("islip", 0.95), "islip never saturated under bursts")

	const mid = 0.6
	f, ta := t.metricAt("fifoms", InputDelay, mid), t.metricAt("tatra", InputDelay, mid)
	o := t.metricAt("oqfifo", InputDelay, mid)
	check(&v, f <= ta*1.2+0.5, "fifoms burst delay %.2f above tatra %.2f", f, ta)
	check(&v, o <= f*1.5+0.5, "oqfifo burst delay %.2f far above fifoms %.2f", o, f)
	for _, other := range []string{"tatra", "oqfifo"} {
		fq, oq := t.metricAt("fifoms", AvgQueue, mid), t.metricAt(other, AvgQueue, mid)
		check(&v, fq <= oq*1.2+0.5, "fifoms burst avg queue %.2f above %s %.2f", fq, other, oq)
	}
	return v
}

// Check dispatches to the figure's checker by sweep name; unknown
// sweeps have no claims and always pass.
func (t *Table) Check() []string {
	switch t.Name {
	case "fig4":
		return t.CheckFig4()
	case "fig5":
		return t.CheckFig5()
	case "fig6":
		return t.CheckFig6()
	case "fig7":
		return t.CheckFig7()
	case "fig8":
		return t.CheckFig8()
	case "ablation-rounds":
		return t.CheckAblationRounds()
	case "ablation-splitting":
		return t.CheckAblationSplitting()
	case "ablation-criterion":
		return t.CheckAblationCriterion()
	case "speedup":
		return t.CheckSpeedup()
	case "industry":
		return t.CheckIndustry()
	case "hotspot":
		return t.CheckHotspot()
	case "memory":
		return t.CheckMemory()
	case "mixed":
		return t.CheckMixed()
	default:
		return nil
	}
}
