package experiment

import (
	"math"
	"testing"

	"voqsim/internal/analytic"
	"voqsim/internal/traffic"
)

func TestReplicateEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many replications")
	}
	sum, err := Replicate(ReplicateConfig{
		Algorithm: OQFIFO,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, 1, n)
		},
		Load:         0.5,
		N:            16,
		Replications: 8,
		Slots:        30_000,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unstable != 0 {
		t.Fatalf("%d unstable replications at load 0.5", sum.Unstable)
	}
	if sum.InDelay.R != 8 {
		t.Fatalf("R = %d", sum.InDelay.R)
	}
	// The interval over independent replications should cover the
	// Karol closed form for the OQ switch.
	want := analytic.OQDelay(16, 0.5)
	if !sum.InDelay.Covers(want) && math.Abs(sum.InDelay.Mean-want) > 0.05 {
		t.Fatalf("OQ delay estimate %v +- %v misses theory %v",
			sum.InDelay.Mean, sum.InDelay.HalfWidth, want)
	}
	if sum.InDelay.HalfWidth <= 0 || math.IsNaN(sum.InDelay.HalfWidth) {
		t.Fatalf("degenerate half width %v", sum.InDelay.HalfWidth)
	}
}

func TestReplicateDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs replications twice")
	}
	run := func(workers int) *ReplicateSummary {
		sum, err := Replicate(ReplicateConfig{
			Algorithm: FIFOMS,
			Pattern: func(load float64, n int) (traffic.Pattern, error) {
				return traffic.BernoulliAtLoad(load, 0.25, n)
			},
			Load: 0.6, N: 8, Replications: 4, Slots: 5000, Seed: 5, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(4)
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("replication %d differs with worker count", i)
		}
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(ReplicateConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Replicate(ReplicateConfig{
		Algorithm: FIFOMS, N: 16, Load: 9,
		Pattern: func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, 0.2, n)
		},
	}); err == nil {
		t.Fatal("unreachable load accepted")
	}
}

func TestEstimateCovers(t *testing.T) {
	e := Estimate{Mean: 5, HalfWidth: 1}
	if !e.Covers(5.5) || e.Covers(6.5) {
		t.Fatal("Covers wrong")
	}
	if (Estimate{Mean: 5, HalfWidth: math.NaN()}).Covers(5) {
		t.Fatal("NaN interval covers")
	}
}
