package voqsim_test

import (
	"fmt"

	"voqsim"
)

// ExampleRun simulates the paper's headline configuration: FIFOMS on a
// 16x16 switch under Bernoulli multicast traffic at 80% load. The run
// is seeded, so the printed numbers are reproducible.
func ExampleRun() {
	report, err := voqsim.Run(voqsim.Config{
		Ports:     16,
		Scheduler: voqsim.FIFOMS,
		Traffic:   voqsim.BernoulliTrafficAtLoad(0.8, 0.2),
		Slots:     50_000,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("load %.1f, stable: %v\n", report.Load, !report.Unstable)
	fmt.Printf("throughput within 2%% of load: %v\n",
		report.Throughput > 0.98*report.Load && report.Throughput < 1.02*report.Load)
	fmt.Printf("delay ordering (per-copy <= whole-packet): %v\n",
		report.AvgOutputDelay <= report.AvgInputDelay)
	// Output:
	// load 0.8, stable: true
	// throughput within 2% of load: true
	// delay ordering (per-copy <= whole-packet): true
}

// ExampleCompare reproduces the paper's central comparison at one
// operating point: FIFOMS needs less buffer space than iSLIP, which
// stores one data cell per multicast copy.
func ExampleCompare() {
	reports, err := voqsim.Compare(voqsim.Config{
		Ports:   16,
		Traffic: voqsim.BernoulliTrafficAtLoad(0.6, 0.2),
		Slots:   30_000,
		Seed:    7,
	}, voqsim.FIFOMS, voqsim.ISLIP)
	if err != nil {
		panic(err)
	}
	fifoms, islip := reports[0], reports[1]
	fmt.Printf("fifoms stores less than islip: %v\n", fifoms.AvgQueueSize < islip.AvgQueueSize)
	fmt.Printf("fifoms delivers faster than islip: %v\n", fifoms.AvgInputDelay < islip.AvgInputDelay)
	// Output:
	// fifoms stores less than islip: true
	// fifoms delivers faster than islip: true
}

// ExampleTraffic_EffectiveLoad shows the paper's load formulas through
// the Traffic type: Bernoulli load is p*b*N.
func ExampleTraffic_EffectiveLoad() {
	tr := voqsim.BernoulliTraffic(0.25, 0.2)
	load, _ := tr.EffectiveLoad(16)
	fmt.Printf("%.2f\n", load)
	// Output:
	// 0.80
}

// ExampleSchedulers lists the algorithm roster.
func ExampleSchedulers() {
	for _, s := range voqsim.Schedulers() {
		fmt.Println(s)
	}
	// Output:
	// 2drr
	// eslip
	// fifoms
	// fifoms-nosplit
	// islip
	// lqfms
	// oqfifo
	// pim
	// tatra
	// wba
}
