package voqsim

// Cross-architecture integration tests: every switch in the library is
// driven through the public API and through recorded traces, and the
// behaviours the architectures must share — conservation, identical
// arrival sequences producing identical offered work, qualitative
// orderings — are asserted across all of them at once.

import (
	"math"
	"testing"

	"voqsim/internal/experiment"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

func allSchedulers() []Scheduler {
	return []Scheduler{FIFOMS, TATRA, ISLIP, OQFIFO, PIM, TDRR, WBA}
}

func TestEverySchedulerDeliversEverything(t *testing.T) {
	// Record one trace and replay it through every architecture: each
	// must deliver exactly the trace's copies once drained. The run is
	// long enough that all queues empty at the recorded horizon's end
	// because load is modest.
	const n = 8
	tr := traffic.Record(traffic.Uniform{P: 0.3, MaxFanout: 4}, n, 4000, xrand.New(15))
	var offered int64
	for _, a := range tr.Arrivals {
		offered += int64(len(a.Dests))
	}

	for _, s := range allSchedulers() {
		algo, err := experiment.ByName(string(s))
		if err != nil {
			t.Fatal(err)
		}
		sw := algo.New(n, xrand.New(1).Split("switch", 0))
		// Drive the trace plus drain time through the raw engine.
		cfg := switchsim.Config{Slots: tr.Slots + 3000, WarmupFrac: -1, Seed: 1}
		res := switchsim.New(sw, tr.Pattern(), cfg, xrand.New(1)).Run(string(s))
		if res.Delivered != offered {
			t.Errorf("%s: delivered %d of %d offered copies", s, res.Delivered, offered)
		}
		if sw.BufferedCells() != 0 {
			t.Errorf("%s: %d cells left after drain window", s, sw.BufferedCells())
		}
	}
}

func TestQualitativeOrderingAtModerateLoad(t *testing.T) {
	// At multicast load 0.6 the paper's ordering must hold: OQ <=
	// FIFOMS delay; FIFOMS < iSLIP delay; FIFOMS queue smallest of the
	// input-queued designs.
	reports, err := Compare(Config{
		Ports:   16,
		Traffic: BernoulliTrafficAtLoad(0.6, 0.2),
		Slots:   40_000,
		Seed:    17,
	}, OQFIFO, FIFOMS, ISLIP, TATRA, PIM, TDRR)
	if err != nil {
		t.Fatal(err)
	}
	by := map[Scheduler]Report{}
	for _, r := range reports {
		if r.Unstable {
			t.Fatalf("%s unstable at load 0.6", r.Scheduler)
		}
		by[r.Scheduler] = r
	}
	if by[OQFIFO].AvgInputDelay > by[FIFOMS].AvgInputDelay*1.05 {
		t.Errorf("OQ delay %v above FIFOMS %v", by[OQFIFO].AvgInputDelay, by[FIFOMS].AvgInputDelay)
	}
	for _, uni := range []Scheduler{ISLIP, PIM, TDRR} {
		if by[uni].AvgInputDelay < by[FIFOMS].AvgInputDelay {
			t.Errorf("%s delay %v below FIFOMS %v under multicast",
				uni, by[uni].AvgInputDelay, by[FIFOMS].AvgInputDelay)
		}
		if by[uni].AvgQueueSize < by[FIFOMS].AvgQueueSize {
			t.Errorf("%s queue %v below FIFOMS %v (copied cells must cost space)",
				uni, by[uni].AvgQueueSize, by[FIFOMS].AvgQueueSize)
		}
	}
}

func TestThroughputMatchesOfferedLoadWhenStable(t *testing.T) {
	for _, s := range allSchedulers() {
		rep, err := Run(Config{
			Ports:     16,
			Scheduler: s,
			Traffic:   BernoulliTrafficAtLoad(0.4, 0.2),
			Slots:     30_000,
			Seed:      19,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Unstable {
			t.Errorf("%s unstable at 0.4", s)
			continue
		}
		if math.Abs(rep.Throughput-0.4) > 0.05 {
			t.Errorf("%s throughput %v, want ~0.4", s, rep.Throughput)
		}
	}
}

func TestMixedTrafficClassFairness(t *testing.T) {
	// FIFOMS under mixed traffic: neither class may be starved, and
	// the per-class means must bracket the overall mean.
	rep, err := Run(Config{
		Ports:     16,
		Scheduler: FIFOMS,
		Traffic:   MixedTraffic(0.2, 0.5, 8), // load = 0.2*3 = 0.6
		Slots:     40_000,
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgUnicastDelay <= 0 || rep.AvgMulticastDelay <= 0 {
		t.Fatalf("class delays not measured: uni=%v multi=%v",
			rep.AvgUnicastDelay, rep.AvgMulticastDelay)
	}
	lo := math.Min(rep.AvgUnicastDelay, rep.AvgMulticastDelay)
	hi := math.Max(rep.AvgUnicastDelay, rep.AvgMulticastDelay)
	if rep.AvgInputDelay < lo-1e-9 || rep.AvgInputDelay > hi+1e-9 {
		t.Fatalf("overall delay %v outside class bracket [%v, %v]",
			rep.AvgInputDelay, lo, hi)
	}
	// A multicast packet completes only when its slowest copy lands,
	// so its input-oriented delay is the larger class here; neither
	// class should be an order of magnitude worse (starvation).
	if hi > 20*lo {
		t.Fatalf("class starvation: %v vs %v", lo, hi)
	}
}

func TestHardwareArbiterThroughFacade(t *testing.T) {
	// The round-capped names resolve through the facade too.
	rep, err := Run(Config{
		Ports:     8,
		Scheduler: "fifoms-r1",
		Traffic:   BernoulliTraffic(0.3, 0.25),
		Slots:     5000,
		Seed:      29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanRounds > 1.0001 {
		t.Fatalf("round-capped scheduler reported %v mean rounds", rep.MeanRounds)
	}
}
