// Package voqsim reproduces "FIFO Based Multicast Scheduling Algorithm
// for VOQ Packet Switches" (Deng Pan and Yuanyuan Yang, ICPP 2004): a
// discrete-time simulator for multicast crossbar packet switches built
// around the paper's two contributions — the multicast VOQ queue
// structure that stores a packet's payload once (data cells) and its
// destinations as per-output place holders (address cells), and the
// FIFOMS scheduler that matches inputs to outputs by smallest arrival
// time stamp.
//
// The package is a facade over the internal substrates (traffic
// models, switch architectures, the simulation engine and the
// experiment harness). Typical use:
//
//	report, err := voqsim.Run(voqsim.Config{
//		Ports:     16,
//		Scheduler: voqsim.FIFOMS,
//		Traffic:   voqsim.BernoulliTraffic(0.5, 0.2),
//		Slots:     200_000,
//		Seed:      1,
//	})
//
// Compare runs several schedulers under identical traffic, and Figure
// regenerates any of the paper's evaluation figures. The cmd/
// directory wraps the same entry points as command-line tools, and
// examples/ holds runnable scenarios.
package voqsim

import (
	"fmt"
	"sort"

	"voqsim/internal/experiment"
	"voqsim/internal/fabric"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

// Scheduler names a scheduling algorithm together with the switch
// architecture it runs on.
type Scheduler string

// The available schedulers.
const (
	// FIFOMS is the paper's algorithm on the multicast VOQ structure.
	FIFOMS Scheduler = "fifoms"
	// TATRA is the Tetris-based multicast baseline on a
	// single-input-queued switch.
	TATRA Scheduler = "tatra"
	// ISLIP is the round-robin unicast VOQ baseline; multicast packets
	// are expanded into independent unicast copies.
	ISLIP Scheduler = "islip"
	// OQFIFO is the output-queued benchmark (needs speedup N).
	OQFIFO Scheduler = "oqfifo"
	// PIM is the randomised unicast VOQ baseline.
	PIM Scheduler = "pim"
	// TDRR is the two-dimensional round-robin unicast VOQ baseline.
	TDRR Scheduler = "2drr"
	// WBA is the age-weighted multicast baseline on a
	// single-input-queued switch.
	WBA Scheduler = "wba"
	// LQFMS replaces FIFOMS's time-stamp criterion with VOQ backlog on
	// the same multicast VOQ structure (design-alternative ablation).
	LQFMS Scheduler = "lqfms"
	// ESLIP is the industrial combined unicast/multicast scheduler
	// (unicast VOQs plus one multicast queue, shared multicast pointer).
	ESLIP Scheduler = "eslip"
	// FIFOMSNoSplit is FIFOMS without fanout splitting (ablation).
	FIFOMSNoSplit Scheduler = "fifoms-nosplit"
)

// Schedulers returns every available scheduler name, sorted.
func Schedulers() []Scheduler {
	out := make([]Scheduler, 0)
	for _, a := range experiment.AllAlgorithms() {
		out = append(out, Scheduler(a.Name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Traffic is an arrival process specification. Construct with one of
// the XxxTraffic / XxxTrafficAtLoad functions.
type Traffic struct {
	pattern traffic.Pattern
	atLoad  func(n int) (traffic.Pattern, error)
}

func (t Traffic) resolve(n int) (traffic.Pattern, error) {
	if t.atLoad != nil {
		return t.atLoad(n)
	}
	if t.pattern == nil {
		return nil, fmt.Errorf("voqsim: empty Traffic; use a constructor")
	}
	return t.pattern, nil
}

// EffectiveLoad returns the offered load per output of an n-port
// switch under this traffic, using the paper's load formulas.
func (t Traffic) EffectiveLoad(n int) (float64, error) {
	pat, err := t.resolve(n)
	if err != nil {
		return 0, err
	}
	return pat.EffectiveLoad(n), nil
}

// String describes the traffic; for at-load specs the description is
// resolved against a 16-port switch.
func (t Traffic) String() string {
	pat, err := t.resolve(16)
	if err != nil {
		return "traffic(unspecified)"
	}
	return pat.String()
}

// BernoulliTraffic is the paper's Bernoulli multicast traffic: an
// arrival with probability p per slot, each output addressed
// independently with probability b (Section V.A).
func BernoulliTraffic(p, b float64) Traffic {
	return Traffic{pattern: traffic.Bernoulli{P: p, B: b}}
}

// BernoulliTrafficAtLoad fixes b and solves p so the effective load is
// load.
func BernoulliTrafficAtLoad(load, b float64) Traffic {
	return Traffic{atLoad: func(n int) (traffic.Pattern, error) {
		return traffic.BernoulliAtLoad(load, b, n)
	}}
}

// UniformTraffic is the paper's uniform traffic: arrival probability
// p, fanout uniform on {1..maxFanout} (Section V.B). maxFanout = 1 is
// pure unicast.
func UniformTraffic(p float64, maxFanout int) Traffic {
	return Traffic{pattern: traffic.Uniform{P: p, MaxFanout: maxFanout}}
}

// UniformTrafficAtLoad fixes maxFanout and solves p for the load.
func UniformTrafficAtLoad(load float64, maxFanout int) Traffic {
	return Traffic{atLoad: func(n int) (traffic.Pattern, error) {
		return traffic.UniformAtLoad(load, maxFanout, n)
	}}
}

// BurstTraffic is the paper's bursty on/off traffic with mean state
// lengths eOff and eOn and per-output probability b (Section V.C).
func BurstTraffic(eOff, eOn, b float64) Traffic {
	return Traffic{pattern: traffic.Burst{EOff: eOff, EOn: eOn, B: b}}
}

// BurstTrafficAtLoad fixes b and eOn and solves eOff for the load.
func BurstTrafficAtLoad(load, b, eOn float64) Traffic {
	return Traffic{atLoad: func(n int) (traffic.Pattern, error) {
		return traffic.BurstAtLoad(load, b, eOn, n)
	}}
}

// MixedTraffic mixes unicast and multicast arrivals: arrival
// probability p, a multicastFrac share of arrivals having fanout
// uniform on {2..maxFanout} and the rest a single destination.
func MixedTraffic(p, multicastFrac float64, maxFanout int) Traffic {
	return Traffic{pattern: traffic.Mixed{P: p, MulticastFrac: multicastFrac, MaxFanout: maxFanout}}
}

// HotspotTraffic is non-uniform multicast traffic with one
// over-subscribed output: arrivals include output hotOut with
// probability bHot and every other output with probability bCold.
func HotspotTraffic(p, bHot, bCold float64, hotOut int) Traffic {
	return Traffic{pattern: traffic.Hotspot{P: p, BHot: bHot, BCold: bCold, HotOut: hotOut}}
}

// HotspotTrafficAtLoad fixes the hot/cold skew ratio (>= 1) and solves
// the parameters so the hot output carries the given load.
func HotspotTrafficAtLoad(load, skew float64) Traffic {
	return Traffic{atLoad: func(n int) (traffic.Pattern, error) {
		return traffic.HotspotAtLoad(load, skew, n)
	}}
}

// DiagonalTraffic is the classic non-uniform unicast pattern: input i
// sends 2/3 of its packets to output i and 1/3 to output (i+1) mod N,
// at per-output load p.
func DiagonalTraffic(p float64) Traffic {
	return Traffic{pattern: traffic.Diagonal{P: p}}
}

// Config describes one simulation run.
type Config struct {
	// Ports is the switch size N (inputs and outputs). With a Topology
	// it is the fabric's external port count and may be left zero to
	// derive it from the topology.
	Ports int
	// Scheduler selects the algorithm and architecture.
	Scheduler Scheduler
	// Topology, when non-empty, runs a multi-stage fabric instead of a
	// single switch: every node of the topology is an instance of
	// Scheduler's switch, and packets are delivered end to end through
	// multicast trees over bounded inter-stage links. Specs:
	// "fattree:k=K" (k-ary fat tree, K even) and "clos:n=N,m=M,r=R"
	// (3-stage Clos). Empty means a single switch.
	Topology string
	// Traffic is the arrival process.
	Traffic Traffic
	// Slots is the simulated duration; zero means 200 000 slots. The
	// paper's runs use 1 000 000.
	Slots int64
	// Seed makes the run reproducible; runs with equal Config are
	// bit-identical.
	Seed uint64
	// WarmupFrac is the fraction of slots excluded from statistics
	// (zero means the paper's one half; negative means none).
	WarmupFrac float64
	// Fast trades bit-exact reproducibility for raw speed: traffic is
	// drawn with O(1) alias/Floyd/geometric samplers and statistics
	// accumulate in batches (DESIGN.md §12). A fast run samples the
	// same stochastic model, so its delay and throughput estimates
	// agree with the default path up to sampling error, but the run
	// is not bit-comparable, and checkpoint/resume is unavailable.
	Fast bool
	// Parallel steps the fabric's nodes on that many worker goroutines
	// within each slot (DESIGN.md §16). Requires a Topology — a single
	// switch has no intra-slot parallelism to exploit. Unlike Fast,
	// Parallel never changes results: the report, every delivery and
	// every checkpoint blob are byte-identical to a sequential run.
	// 0 and 1 mean sequential.
	Parallel int
}

// Report is the outcome of one run: the four statistics of the paper's
// Section V plus convergence rounds, throughput and accounting.
type Report struct {
	Scheduler Scheduler
	Traffic   string
	Ports     int
	Load      float64 // analytic effective load per output
	Seed      uint64

	Slots       int64
	WarmupSlots int64
	Unstable    bool  // the offered load could not be sustained
	UnstableAt  int64 // slot at which instability was detected

	AvgInputDelay  float64 // mean delay of a packet's last copy (slots)
	AvgOutputDelay float64 // mean per-copy delay (slots)

	// Per-class input-oriented delay for fairness analysis: unicast
	// packets (fanout 1) vs multicast packets (fanout >= 2). Zero when
	// the class saw no completed packets.
	AvgUnicastDelay   float64
	AvgMulticastDelay float64
	InputDelayP99     int64   // upper bound on the 99th percentile input delay
	AvgQueueSize      float64 // mean per-port buffer occupancy (cells)
	MaxQueueSize      int64   // largest per-port occupancy observed
	MeanRounds        float64 // mean scheduler iterations per busy slot (0 for non-iterative)
	Throughput        float64 // delivered copies per output per slot

	CompletedPackets int64
	DeliveredCopies  int64

	// Buffer memory accounting (Section IV.B), zero for architectures
	// that do not report it: mean bytes per port and peak total bytes.
	AvgBufferBytes  float64
	PeakBufferBytes int64

	// Fabric summarises the multi-stage run; nil for single switches.
	Fabric *FabricReport
}

// FabricReport is the fabric-level outcome of a Topology run: identity
// of the wiring plus end-to-end copy accounting and hop-count
// statistics (a copy's hop count is the number of switches it
// traversed).
type FabricReport struct {
	Topology string // normalised spec, e.g. "fattree:k=4"
	Nodes    int
	Links    int

	AdmittedPackets int64
	AdmittedCopies  int64
	DeliveredCopies int64
	DroppedCopies   int64 // lost to full inter-stage links, counted per leaf
	DropsByHop      []int64

	HopMean float64
	HopMin  int64
	HopMax  int64
}

func toReport(r switchsim.Results) Report {
	var fr *FabricReport
	if r.Fabric != nil {
		fr = &FabricReport{
			Topology:        r.Fabric.Topology,
			Nodes:           r.Fabric.Nodes,
			Links:           r.Fabric.Links,
			AdmittedPackets: r.Fabric.AdmittedPackets,
			AdmittedCopies:  r.Fabric.AdmittedCopies,
			DeliveredCopies: r.Fabric.DeliveredCopies,
			DroppedCopies:   r.Fabric.DroppedCopies,
			DropsByHop:      r.Fabric.DropsByHop,
			HopMean:         r.Fabric.HopMean,
			HopMin:          r.Fabric.HopMin,
			HopMax:          r.Fabric.HopMax,
		}
	}
	return Report{
		Fabric:            fr,
		Scheduler:         Scheduler(r.Algorithm),
		Traffic:           r.Pattern,
		Ports:             r.Ports,
		Load:              r.Load,
		Seed:              r.Seed,
		Slots:             r.Slots,
		WarmupSlots:       r.WarmupSlots,
		Unstable:          r.Unstable,
		UnstableAt:        r.UnstableAt,
		AvgInputDelay:     r.InputDelay.Mean,
		AvgOutputDelay:    r.OutputDelay.Mean,
		AvgUnicastDelay:   r.UnicastInputDelay.Mean,
		AvgMulticastDelay: r.MulticastInputDelay.Mean,
		InputDelayP99:     r.InputDelayP99,
		AvgQueueSize:      r.AvgQueue,
		MaxQueueSize:      r.MaxQueue,
		MeanRounds:        r.Rounds.Mean,
		Throughput:        r.Throughput,
		CompletedPackets:  r.Completed,
		DeliveredCopies:   r.Delivered,
		AvgBufferBytes:    r.AvgBufferBytes,
		PeakBufferBytes:   r.PeakBufferBytes,
	}
}

// String renders the report's headline numbers on one line.
func (r Report) String() string {
	state := "stable"
	if r.Unstable {
		state = fmt.Sprintf("UNSTABLE@%d", r.UnstableAt)
	}
	return fmt.Sprintf("%s %s load=%.3f: inDelay=%.2f outDelay=%.2f avgQ=%.2f maxQ=%d thr=%.3f [%s]",
		r.Scheduler, r.Traffic, r.Load, r.AvgInputDelay, r.AvgOutputDelay,
		r.AvgQueueSize, r.MaxQueueSize, r.Throughput, state)
}

// buildRunner assembles the engine runner for cfg. The seed derivation
// here is pinned: checkpoint blobs embed the derived streams, so
// changing it would orphan every saved snapshot.
func buildRunner(cfg Config) (*switchsim.Runner, string, error) {
	algo, err := experiment.ByName(string(cfg.Scheduler))
	if err != nil {
		return nil, "", err
	}
	if cfg.Parallel > 1 && cfg.Topology == "" {
		return nil, "", fmt.Errorf("voqsim: Parallel needs a Topology; a single switch steps sequentially")
	}
	if cfg.Topology != "" {
		top, err := fabric.ParseSpec(cfg.Topology)
		if err != nil {
			return nil, "", err
		}
		if cfg.Ports == 0 {
			cfg.Ports = top.Ingress()
		}
		if cfg.Ports != top.Ingress() {
			return nil, "", fmt.Errorf("voqsim: Ports %d does not match the %d external ports of topology %s",
				cfg.Ports, top.Ingress(), top.Name())
		}
		if algo, err = experiment.WithTopology(algo, top, fabric.Config{Workers: cfg.Parallel}); err != nil {
			return nil, "", err
		}
	}
	if cfg.Ports <= 0 {
		return nil, "", fmt.Errorf("voqsim: Ports must be positive, got %d", cfg.Ports)
	}
	pat, err := cfg.Traffic.resolve(cfg.Ports)
	if err != nil {
		return nil, "", err
	}
	seedRoot := xrand.New(cfg.Seed)
	sw := algo.New(cfg.Ports, seedRoot.Split("switch", 0))
	engineCfg := switchsim.Config{Slots: cfg.Slots, Seed: cfg.Seed, WarmupFrac: cfg.WarmupFrac, Fast: cfg.Fast}
	return switchsim.New(sw, pat, engineCfg, seedRoot.Split("traffic", 0)), algo.Name, nil
}

// closeRunner releases any goroutines the runner's switch owns (the
// parallel fabric's worker pool); a no-op for everything else.
func closeRunner(r *switchsim.Runner) {
	if c, ok := r.Switch().(interface{ Close() error }); ok {
		c.Close()
	}
}

// Run simulates one switch under one traffic pattern and returns its
// report. The run is fully determined by cfg.
func Run(cfg Config) (Report, error) {
	runner, name, err := buildRunner(cfg)
	if err != nil {
		return Report{}, err
	}
	defer closeRunner(runner)
	return toReport(runner.Run(name)), nil
}

// CheckpointFunc receives each periodic snapshot of a resumable run:
// blob restores a run that continues at nextSlot. A non-nil error
// aborts the run.
type CheckpointFunc func(nextSlot int64, blob []byte) error

// RunResumable is Run with the engine's checkpoint protocol attached
// (DESIGN.md §10). When resumeFrom is non-nil the run restores that
// snapshot — which must have been taken under an identical cfg — and
// continues from the checkpointed slot; the report is bit-identical to
// a run that was never interrupted. When every > 0, sink receives a
// self-contained snapshot of the simulation state after each block of
// `every` slots. Snapshots require a checkpointable scheduler (the
// core VOQ family, eslip and wba).
func RunResumable(cfg Config, resumeFrom []byte, every int64, sink CheckpointFunc) (Report, error) {
	if cfg.Fast && (resumeFrom != nil || every > 0) {
		return Report{}, fmt.Errorf("voqsim: Fast mode cannot be checkpointed or resumed (it relaxes bit-exact draw order)")
	}
	if every > 0 && sink == nil {
		return Report{}, fmt.Errorf("voqsim: checkpoint interval %d without a sink", every)
	}
	runner, name, err := buildRunner(cfg)
	if err != nil {
		return Report{}, err
	}
	defer closeRunner(runner)
	if every > 0 {
		// Fail before simulating, not at the first checkpoint.
		if err := runner.Snapshottable(); err != nil {
			return Report{}, err
		}
	}
	if resumeFrom != nil {
		if err := runner.Restore(name, resumeFrom); err != nil {
			return Report{}, err
		}
	}
	res, err := runner.RunWithCheckpoints(name, every, switchsim.CheckpointFunc(sink))
	if err != nil {
		return Report{}, err
	}
	return toReport(res), nil
}

// Compare runs every scheduler under an identical configuration (same
// traffic family and seed) and returns the reports in the given order.
func Compare(cfg Config, schedulers ...Scheduler) ([]Report, error) {
	if len(schedulers) == 0 {
		return nil, fmt.Errorf("voqsim: Compare needs at least one scheduler")
	}
	reports := make([]Report, 0, len(schedulers))
	for _, s := range schedulers {
		c := cfg
		c.Scheduler = s
		rep, err := Run(c)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
