package voqsim

import (
	"fmt"
	"sort"
	"strings"

	"voqsim/internal/asciiplot"
	"voqsim/internal/experiment"
)

// FigureOptions tune a figure regeneration.
type FigureOptions struct {
	// Slots per sweep point; zero means 200 000 (paper: 1 000 000).
	Slots int64
	// Seed is the base seed (zero means 2004).
	Seed uint64
	// Ports overrides the switch size (zero means the paper's 16).
	Ports int
	// Extended adds the PIM/WBA/no-split baselines to the roster.
	Extended bool
	// Plots adds ASCII plots to the rendered text.
	Plots bool
	// Workers caps the parallel simulations (zero means all cores).
	Workers int
}

// FigureResult is a regenerated evaluation figure.
type FigureResult struct {
	// Name is the figure id ("fig4" ... "fig8", or an extension name).
	Name string
	// Title describes the workload.
	Title string
	// Text is the rendered table (and plots, if requested).
	Text string
	// Violations lists the paper's qualitative claims that did NOT
	// hold in this run; empty means the figure's shape matches.
	Violations []string
	// Series holds the raw measured values keyed "algorithm/metric",
	// parallel to Loads; saturated points are +Inf.
	Loads  []float64
	Series map[string][]float64
}

// FigureNames lists the available figure and extension sweeps.
func FigureNames() []string {
	names := make([]string, 0)
	for name := range experiment.Figures(experiment.Options{}) {
		names = append(names, name)
	}
	for name := range experiment.Extensions(experiment.Options{}) {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Figure regenerates one of the paper's evaluation figures (fig4,
// fig5, fig6, fig7, fig8) or extension sweeps (ablation-rounds,
// ablation-splitting, mixed) and checks it against the paper's
// qualitative claims.
func Figure(name string, opts FigureOptions) (*FigureResult, error) {
	eo := experiment.Options{
		N: opts.Ports, Slots: opts.Slots, Seed: opts.Seed,
		Extended: opts.Extended, Workers: opts.Workers,
	}
	sweeps := experiment.Figures(eo)
	for n, sw := range experiment.Extensions(eo) {
		sweeps[n] = sw
	}
	sweep, ok := sweeps[name]
	if !ok {
		return nil, fmt.Errorf("voqsim: unknown figure %q (have %s)", name, strings.Join(FigureNames(), ", "))
	}
	tbl, err := sweep.Run()
	if err != nil {
		return nil, err
	}

	metrics := experiment.FigureMetrics()
	if name == "fig5" {
		metrics = []experiment.Metric{experiment.Rounds}
	}

	var text strings.Builder
	text.WriteString(tbl.Format(metrics...))
	if opts.Plots {
		for _, m := range metrics {
			p := asciiplot.Plot{
				Title:  fmt.Sprintf("%s — %s", tbl.Title, m.Label),
				XLabel: "effective load",
				YLabel: m.Name,
				Xs:     tbl.Loads,
				LogY:   m.Saturating,
			}
			for _, algo := range tbl.Algos {
				ys, err := tbl.Series(algo, m)
				if err != nil {
					return nil, err
				}
				p.Series = append(p.Series, asciiplot.Series{Name: algo, Ys: ys})
			}
			text.WriteByte('\n')
			text.WriteString(p.Render())
		}
	}

	res := &FigureResult{
		Name:       tbl.Name,
		Title:      tbl.Title,
		Text:       text.String(),
		Violations: tbl.Check(),
		Loads:      tbl.Loads,
		Series:     make(map[string][]float64),
	}
	for _, algo := range tbl.Algos {
		for _, m := range append(metrics, experiment.Throughput) {
			ys, err := tbl.Series(algo, m)
			if err != nil {
				return nil, err
			}
			res.Series[algo+"/"+m.Name] = ys
		}
	}
	return res, nil
}
