package voqsim

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (Section V). Each BenchmarkFigN runs the full
// (algorithm x load) sweep behind the corresponding figure once per
// iteration at a reduced slot budget and reports headline values from
// the measured series with b.ReportMetric, so `go test -bench=.`
// reproduces the comparison the paper plots. Absolute delay numbers
// depend on the slot budget; the qualitative shape (who wins, where
// the knees are) is what the shape checkers assert.
//
// BenchmarkPreprocess and BenchmarkFIFOMSMatch cover Tables 1 and 2:
// the per-packet preprocessing cost and the per-slot scheduling cost of
// the algorithms themselves.

import (
	"fmt"
	"testing"

	"voqsim/internal/cell"
	"voqsim/internal/core"
	"voqsim/internal/destset"
	"voqsim/internal/experiment"
	"voqsim/internal/hw"
	"voqsim/internal/oq"
	"voqsim/internal/sched/islip"
	"voqsim/internal/sched/pim"
	"voqsim/internal/switchsim"
	"voqsim/internal/tatra"
	"voqsim/internal/traffic"
	"voqsim/internal/wba"
	"voqsim/internal/xrand"
)

// benchSlots keeps full-sweep benchmarks at a budget where one
// iteration is seconds, not minutes; raise with -benchtime for
// publication-grade runs.
const benchSlots = 10_000

func benchOptions() experiment.Options {
	return experiment.Options{Slots: benchSlots, Seed: 2004}
}

// runFigureBench executes the sweep once per b.N iteration and reports
// the chosen headline series values as custom metrics.
func runFigureBench(b *testing.B, sweep *experiment.Sweep, metric experiment.Metric, headlineLoad float64, algos ...string) {
	b.Helper()
	var tbl *experiment.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = sweep.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, algo := range algos {
		ys, err := tbl.Series(algo, metric)
		if err != nil {
			b.Fatal(err)
		}
		li := nearestLoad(tbl.Loads, headlineLoad)
		b.ReportMetric(ys[li], fmt.Sprintf("%s_%s@%.2f", algo, metric.Name, tbl.Loads[li]))
	}
}

func nearestLoad(loads []float64, want float64) int {
	best, bestDist := 0, -1.0
	for i, l := range loads {
		d := l - want
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// BenchmarkFig4BernoulliSweep regenerates Figure 4: 16x16 switch,
// Bernoulli traffic with b=0.2, all four algorithms over the load
// axis; the headline metric is the input-oriented delay at load 0.7.
func BenchmarkFig4BernoulliSweep(b *testing.B) {
	runFigureBench(b, experiment.Fig4(benchOptions()), experiment.InputDelay, 0.7,
		"fifoms", "tatra", "islip", "oqfifo")
}

// BenchmarkFig5ConvergenceRounds regenerates Figure 5: average
// convergence rounds of FIFOMS vs iSLIP under Figure 4's traffic.
func BenchmarkFig5ConvergenceRounds(b *testing.B) {
	runFigureBench(b, experiment.Fig5(benchOptions()), experiment.Rounds, 0.7,
		"fifoms", "islip")
}

// BenchmarkFig6UnicastSweep regenerates Figure 6: pure unicast traffic
// (uniform, maxFanout=1).
func BenchmarkFig6UnicastSweep(b *testing.B) {
	runFigureBench(b, experiment.Fig6(benchOptions()), experiment.InputDelay, 0.5,
		"fifoms", "tatra", "islip", "oqfifo")
}

// BenchmarkFig7UniformFanout8Sweep regenerates Figure 7: uniform
// traffic with maxFanout=8.
func BenchmarkFig7UniformFanout8Sweep(b *testing.B) {
	runFigureBench(b, experiment.Fig7(benchOptions()), experiment.InputDelay, 0.7,
		"fifoms", "tatra", "islip", "oqfifo")
}

// BenchmarkFig8BurstSweep regenerates Figure 8: bursty traffic with
// b=0.5 and Eon=16.
func BenchmarkFig8BurstSweep(b *testing.B) {
	runFigureBench(b, experiment.Fig8(benchOptions()), experiment.InputDelay, 0.5,
		"fifoms", "tatra", "islip", "oqfifo")
}

// BenchmarkAblationRounds sweeps the FIFOMS iteration-cap ablation.
func BenchmarkAblationRounds(b *testing.B) {
	runFigureBench(b, experiment.AblationRounds(benchOptions()), experiment.InputDelay, 0.8,
		"fifoms-r1", "fifoms")
}

// BenchmarkAblationSplitting sweeps the fanout-splitting ablation.
func BenchmarkAblationSplitting(b *testing.B) {
	runFigureBench(b, experiment.AblationSplitting(benchOptions()), experiment.InputDelay, 0.8,
		"fifoms", "fifoms-nosplit")
}

// BenchmarkAblationCriterion sweeps the FIFO-vs-longest-queue
// criterion ablation.
func BenchmarkAblationCriterion(b *testing.B) {
	runFigureBench(b, experiment.AblationCriterion(benchOptions()), experiment.InputDelay, 0.8,
		"fifoms", "lqfms")
}

// BenchmarkSpeedupSweep sweeps CIOQ fabric speedups against the pure
// input-queued and output-queued designs.
func BenchmarkSpeedupSweep(b *testing.B) {
	runFigureBench(b, experiment.Speedup(benchOptions()), experiment.InputDelay, 0.9,
		"fifoms", "cioq-s2", "oqfifo")
}

// BenchmarkIndustrySweep compares FIFOMS with the industrial ESLIP
// scheduler under the paper's Bernoulli traffic.
func BenchmarkIndustrySweep(b *testing.B) {
	runFigureBench(b, experiment.Industry(benchOptions()), experiment.InputDelay, 0.6,
		"fifoms", "eslip")
}

// BenchmarkHotspotSweep sweeps the non-uniform hotspot pattern.
func BenchmarkHotspotSweep(b *testing.B) {
	runFigureBench(b, experiment.HotspotTraffic(benchOptions()), experiment.InputDelay, 0.7,
		"fifoms", "oqfifo")
}

// BenchmarkPreprocess measures Table 1: turning one arriving
// multicast packet into one data cell plus fanout address cells. The
// switch is drained every slot so buffers stay small.
func BenchmarkPreprocess(b *testing.B) {
	const n = 16
	sw := core.NewSwitch(n, &core.FIFOMS{}, xrand.New(1))
	dests := destset.FromMembers(n, 0, 2, 4, 6, 8, 10, 12, 14) // fanout 8
	drain := func(cell.Delivery) {}
	// Packet shells are pre-allocated and recycled: the drain below
	// drops every switch-held reference before a shell is reused, so
	// the loop measures the switch's arrival path alone. The zero-alloc
	// guard in alloc_guard_test.go depends on this.
	var pool [n]cell.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &pool[i%n]
		*p = cell.Packet{ID: cell.PacketID(i), Input: i % n, Arrival: int64(i), Dests: dests}
		sw.Arrive(p)
		if i%n == n-1 {
			b.StopTimer()
			for sw.BufferedCells() > 0 {
				sw.Step(int64(i), drain)
			}
			b.StartTimer()
		}
	}
}

// loadedSwitch returns a switch with every VOQ backlogged, the
// worst-case state for one scheduling step.
func loadedSwitch(n int, arb core.Arbiter) *core.Switch {
	sw := core.NewSwitch(n, arb, xrand.New(7))
	id := cell.PacketID(0)
	for in := 0; in < n; in++ {
		for round := 0; round < 4; round++ {
			d := destset.New(n)
			for out := 0; out < n; out++ {
				if (in+out+round)%3 == 0 {
					d.Add(out)
				}
			}
			if d.Empty() {
				d.Add((in + round) % n)
			}
			id++
			sw.Arrive(&cell.Packet{ID: id, Input: in, Arrival: int64(round), Dests: d})
		}
	}
	return sw
}

// BenchmarkFIFOMSMatch measures Table 2: one FIFOMS scheduling round
// set on a fully backlogged 16x16 switch (arbitration only, through a
// full Step including transfer and refill bookkeeping).
func BenchmarkFIFOMSMatch(b *testing.B) {
	benchStep(b, func() switchsim.Switch { return loadedSwitch(16, &core.FIFOMS{}) })
}

// BenchmarkISLIPMatch measures iSLIP's per-slot cost on the same
// backlogged state.
func BenchmarkISLIPMatch(b *testing.B) {
	benchStep(b, func() switchsim.Switch { return loadedSwitch(16, islip.New()) })
}

// BenchmarkPIMMatch measures PIM's per-slot cost.
func BenchmarkPIMMatch(b *testing.B) {
	benchStep(b, func() switchsim.Switch { return loadedSwitch(16, pim.New()) })
}

// BenchmarkHWControlUnitMatch measures the gate-level FIFOMS control
// unit's per-slot cost on the same backlogged state, for comparison
// with the behavioural arbiter.
func BenchmarkHWControlUnitMatch(b *testing.B) {
	benchStep(b, func() switchsim.Switch { return loadedSwitch(16, hw.NewControlUnit()) })
}

// benchStep repeatedly steps a freshly loaded switch; when the backlog
// drains the switch is rebuilt outside the timer.
func benchStep(b *testing.B, mk func() switchsim.Switch) {
	b.Helper()
	sw := mk()
	drain := func(cell.Delivery) {}
	slot := int64(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sw.BufferedCells() == 0 {
			b.StopTimer()
			sw = mk()
			b.StartTimer()
		}
		sw.Step(slot, drain)
		slot++
	}
}

// benchEndToEnd measures whole-simulation throughput (slots/op
// inverse) for one architecture at a fixed operating point.
func benchEndToEnd(b *testing.B, mk func() switchsim.Switch, pat traffic.Pattern) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runner := switchsim.New(mk(), pat, switchsim.Config{Slots: 5000, Seed: uint64(i)}, xrand.New(uint64(i)))
		res := runner.Run("bench")
		if res.Completed == 0 {
			b.Fatal("no packets completed")
		}
	}
	b.ReportMetric(5000*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
}

// BenchmarkEndToEndFIFOMS runs 5000 slots of a 16x16 FIFOMS switch at
// load 0.8 per iteration.
func BenchmarkEndToEndFIFOMS(b *testing.B) {
	benchEndToEnd(b, func() switchsim.Switch {
		return core.NewSwitch(16, &core.FIFOMS{}, xrand.New(3))
	}, traffic.Bernoulli{P: 0.25, B: 0.2})
}

// BenchmarkEndToEndISLIP is the iSLIP counterpart.
func BenchmarkEndToEndISLIP(b *testing.B) {
	benchEndToEnd(b, func() switchsim.Switch {
		return core.NewSwitch(16, islip.New(), xrand.New(3))
	}, traffic.Bernoulli{P: 0.25, B: 0.2})
}

// BenchmarkEndToEndTATRA is the TATRA counterpart.
func BenchmarkEndToEndTATRA(b *testing.B) {
	benchEndToEnd(b, func() switchsim.Switch { return tatra.New(16) },
		traffic.Bernoulli{P: 0.25, B: 0.2})
}

// BenchmarkEndToEndWBA is the WBA counterpart.
func BenchmarkEndToEndWBA(b *testing.B) {
	benchEndToEnd(b, func() switchsim.Switch { return wba.New(16, xrand.New(3)) },
		traffic.Bernoulli{P: 0.25, B: 0.2})
}

// BenchmarkEndToEndOQ is the output-queued counterpart.
func BenchmarkEndToEndOQ(b *testing.B) {
	benchEndToEnd(b, func() switchsim.Switch { return oq.New(16) },
		traffic.Bernoulli{P: 0.25, B: 0.2})
}
