// Command voqsweep runs a custom load sweep — any traffic family, any
// subset of algorithms — and prints the measured series as tables,
// optionally as CSV/JSON.
//
// Usage:
//
//	voqsweep [flags]
//
//	-algos fifoms,tatra,islip,oqfifo   algorithms to compare
//	-traffic bernoulli                 bernoulli | uniform | burst | mixed
//	-loads 0.1,0.2,...                 swept effective loads
//	-b, -maxfanout, -eon, -mcfrac      family shape parameters
//	-n, -slots, -seed, -workers        run setup
//	-parallel R                        run R independent replications of every
//	                                   point concurrently and merge them into one
//	                                   pooled measurement per cell (replication 0
//	                                   reuses the point's legacy seed, so tables
//	                                   extend rather than change). Incompatible
//	                                   with -resume-dir, -serve and -worker.
//	-topology fattree:k=4              sweep a multi-stage fabric (every node an
//	                                   instance of each -algos entry) instead of
//	                                   a single switch; -n is forced to the
//	                                   fabric's external port count
//	-metrics in_delay,avg_queue        metrics to print (fabric runs add hops, drops)
//	-fast                              relaxed-identity fast mode: O(1) traffic
//	                                   sampling and batched statistics (DESIGN.md
//	                                   §12); statistically equivalent, not
//	                                   bit-comparable. Incompatible with -check
//	                                   and -resume-dir.
//	-check                             invariant-check every point (exit 1 on violation)
//	-progress                          stream per-point completion and ETA to stderr
//	-resume-dir DIR                    make the sweep resumable: finished points and
//	                                   mid-run checkpoints live in DIR, and a re-run
//	                                   with the same flags picks up where it stopped
//	-checkpoint-every K                checkpoint cadence in slots (with -resume-dir)
//	-csv FILE / -json FILE             exports
//	-cpuprofile FILE / -memprofile FILE  pprof profiles of the sweep
//	-serve ADDR                        coordinate a worker fleet on ADDR instead of
//	                                   simulating locally; prints "DSWEEP READY addr"
//	                                   to stderr, then emits the merged table exactly
//	                                   as a local run (see README "Distributed sweeps")
//	-worker ADDR                       run as a fleet worker against a coordinator
//	-worker-name NAME                  worker display name (default host-pid)
//	-lease-ttl 10s                     with -serve: reclaim a point whose worker is
//	                                   silent this long
//
// Example — reproduce Figure 7's delay panel with extension baselines:
//
//	voqsweep -traffic uniform -maxfanout 8 -algos fifoms,tatra,islip,oqfifo,wba
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"voqsim/internal/dsweep"
	"voqsim/internal/experiment"
	"voqsim/internal/fabric"
	"voqsim/internal/scenario"
	"voqsim/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command with its streams injected, so tests can pin
// stdout byte for byte. It returns the process exit code. Measured
// output (tables, check verdict) goes to stdout; diagnostics and
// -progress reporting go to stderr only.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("voqsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algosFlag   = fs.String("algos", "fifoms,tatra,islip,oqfifo", "comma-separated algorithms")
		trafficK    = fs.String("traffic", "bernoulli", "traffic family: bernoulli|uniform|burst|mixed|hotspot|diagonal")
		loadsFlag   = fs.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated effective loads")
		b           = fs.Float64("b", 0.2, "per-output probability (bernoulli, burst)")
		maxFanout   = fs.Int("maxfanout", 8, "maximum fanout (uniform, mixed)")
		eOn         = fs.Float64("eon", 16, "mean burst length (burst)")
		mcFrac      = fs.Float64("mcfrac", 0.5, "multicast fraction (mixed)")
		skew        = fs.Float64("skew", 4, "hot/cold load ratio (hotspot)")
		n           = fs.Int("n", 16, "switch size N")
		topoFlag    = fs.String("topology", "", "multi-stage fabric spec: fattree:k=K | clos:n=N,m=M,r=R (empty: single switch)")
		slots       = fs.Int64("slots", 200_000, "slots per point")
		seed        = fs.Uint64("seed", 2004, "base seed")
		workers     = fs.Int("workers", 0, "parallel simulations (0 = all cores)")
		parallelR   = fs.Int("parallel", 0, "independent replications per point, merged into one measurement (0/1 = single run)")
		metricsFlag = fs.String("metrics", "in_delay,out_delay,avg_queue,max_queue", "metrics to print")
		csvPath     = fs.String("csv", "", "write long-form CSV to this file")
		jsonPath    = fs.String("json", "", "write the full table as JSON to this file")
		configPath  = fs.String("config", "", "run a scenario file instead of flag-built traffic (see internal/scenario)")
		fastRun     = fs.Bool("fast", false, "relaxed-identity fast mode (no -check/-resume-dir)")
		checkRun    = fs.Bool("check", false, "run every point under the runtime invariant checker; exit 1 on any violation")
		progressOn  = fs.Bool("progress", false, "stream per-point completion and ETA to stderr")
		resumeDir   = fs.String("resume-dir", "", "checkpoint directory; a re-run of the identical sweep resumes from it")
		ckptEvery   = fs.Int64("checkpoint-every", 0, "checkpoint cadence in slots (with -resume-dir; 0 = a tenth of -slots)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = fs.String("memprofile", "", "write a heap profile to this file at exit")
		serveAddr   = fs.String("serve", "", "coordinate a worker fleet on this TCP address (e.g. 127.0.0.1:0) instead of simulating locally")
		workerAddr  = fs.String("worker", "", "run as a fleet worker against this coordinator address")
		workerName  = fs.String("worker-name", "", "worker display name (default host-pid)")
		leaseTTL    = fs.Duration("lease-ttl", 10*time.Second, "with -serve: reclaim a point whose worker is silent this long")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *parallelR > 1 && (*serveAddr != "" || *workerAddr != "") {
		// Replications run on the in-process pool; the fleet protocol
		// leases single simulations (see experiment.RunPointAt).
		return fail(stderr, fmt.Errorf("-parallel replications cannot be distributed: drop -serve/-worker or run the sweep locally"))
	}
	if *workerAddr != "" {
		if *serveAddr != "" {
			return fail(stderr, fmt.Errorf("-serve and -worker are mutually exclusive"))
		}
		return runWorkerMode(*workerAddr, *workerName, *progressOn, stderr)
	}
	serve := serveOpts{addr: *serveAddr, ttl: *leaseTTL, verbose: *progressOn}
	if *serveAddr != "" {
		switch {
		case *fastRun:
			return fail(stderr, fmt.Errorf("-serve is incompatible with -fast: the fleet protocol checkpoints the bit-exact path"))
		case *topoFlag != "":
			return fail(stderr, fmt.Errorf("-serve cannot distribute -topology sweeps: fabric rosters are not expressible as a wire spec yet"))
		}
	}

	if *fastRun {
		switch {
		case *checkRun:
			return fail(stderr, fmt.Errorf("-fast is incompatible with -check: the invariant checker certifies the bit-exact path"))
		case *resumeDir != "":
			return fail(stderr, fmt.Errorf("-fast is incompatible with -resume-dir: fast runs cannot be checkpointed or resumed"))
		}
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf, stderr)
	if err != nil {
		return fail(stderr, err)
	}
	defer stopProfiles()

	var progress func(experiment.Progress)
	if *progressOn {
		progress = progressPrinter(stderr)
	}

	if *configPath != "" {
		return runScenario(*configPath, *metricsFlag, *csvPath, *jsonPath,
			*checkRun, *fastRun, *resumeDir, *ckptEvery, *parallelR, serve, progress, stdout, stderr)
	}

	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		return fail(stderr, err)
	}
	algos, err := parseAlgos(*algosFlag)
	if err != nil {
		return fail(stderr, err)
	}
	sizeLabel := fmt.Sprintf("%dx%d", *n, *n)
	if *topoFlag != "" {
		top, err := fabric.ParseSpec(*topoFlag)
		if err != nil {
			return fail(stderr, err)
		}
		for i := range algos {
			if algos[i], err = experiment.WithTopology(algos[i], top, fabric.Config{}); err != nil {
				return fail(stderr, err)
			}
		}
		// The engine drives the fabric's external ports; -n is not a
		// free parameter on a topology sweep.
		*n = top.Ingress()
		sizeLabel = fmt.Sprintf("%s (%d ports)", top.Name(), *n)
	}
	pattern, title, err := patternFor(*trafficK, *b, *maxFanout, *eOn, *mcFrac, *skew)
	if err != nil {
		return fail(stderr, err)
	}
	metrics, err := parseMetrics(*metricsFlag)
	if err != nil {
		return fail(stderr, err)
	}

	sweep := &experiment.Sweep{
		Name:            "sweep",
		Title:           fmt.Sprintf("%s, %s", title, sizeLabel),
		N:               *n,
		Loads:           loads,
		Algorithms:      algos,
		Slots:           *slots,
		Seed:            *seed,
		Workers:         *workers,
		Replications:    *parallelR,
		Pattern:         pattern,
		Check:           *checkRun,
		CheckpointDir:   *resumeDir,
		CheckpointEvery: *ckptEvery,
		Progress:        progress,
		Fast:            *fastRun,
	}
	if serve.addr != "" {
		ts, err := trafficSpecFor(*trafficK, *b, *maxFanout, *eOn, *mcFrac, *skew)
		if err != nil {
			return fail(stderr, err)
		}
		names := make([]string, len(algos))
		for i, a := range algos {
			names[i] = a.Name
		}
		spec := dsweep.Spec{
			Scenario: scenario.Scenario{
				Name:       sweep.Name,
				N:          *n,
				Slots:      *slots,
				Seed:       *seed,
				Traffic:    ts,
				Algorithms: names,
				Loads:      loads,
			},
			Check: *checkRun,
		}
		return serveSweep(sweep, spec, serve, metrics, *csvPath, *jsonPath, *checkRun, progress, stdout, stderr)
	}
	tbl, err := sweep.Run()
	if err != nil {
		return fail(stderr, err)
	}
	return emit(tbl, metrics, *csvPath, *jsonPath, *checkRun, stdout, stderr)
}

// emit renders the finished table: formatted metrics to stdout, then
// the optional CSV/JSON exports and the invariant-check verdict.
func emit(tbl *experiment.Table, metrics []experiment.Metric, csvPath, jsonPath string, checked bool, stdout, stderr io.Writer) int {
	fmt.Fprint(stdout, tbl.Format(metrics...))

	if csvPath != "" {
		if err := writeFile(csvPath, func(f *os.File) error {
			return tbl.WriteCSV(f, metrics...)
		}); err != nil {
			return fail(stderr, err)
		}
	}
	if jsonPath != "" {
		if err := writeFile(jsonPath, func(f *os.File) error {
			return tbl.WriteJSON(f)
		}); err != nil {
			return fail(stderr, err)
		}
	}
	return reportCheck(tbl, checked, stdout, stderr)
}

// progressPrinter renders engine progress events, one line each, to
// the diagnostic stream. Durations are rounded to whole milliseconds —
// progress is for humans, and sub-millisecond noise only jitters the
// column.
func progressPrinter(stderr io.Writer) func(experiment.Progress) {
	return func(p experiment.Progress) {
		fmt.Fprintf(stderr, "voqsweep: %d/%d %s elapsed %s eta %s\n",
			p.Done, p.Total, p.Label,
			p.Elapsed.Round(time.Millisecond), p.ETA.Round(time.Millisecond))
	}
}

// reportCheck prints the invariant-checker verdict of a checked sweep
// and returns non-zero when any point drew a violation.
func reportCheck(tbl *experiment.Table, checked bool, stdout, stderr io.Writer) int {
	if !checked {
		return 0
	}
	if fails := tbl.CheckFailures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(stderr, "voqsweep: check: %s\n", f)
		}
		return fail(stderr, fmt.Errorf("invariant check failed on %d points", len(fails)))
	}
	fmt.Fprintln(stdout, "check: all points passed the invariant checker")
	return 0
}

// startProfiles starts CPU profiling and/or arranges a heap profile,
// returning a stop function to run when the measured work is done.
// Either path may be empty. The heap profile is preceded by a GC so it
// shows live steady-state memory, not garbage awaiting collection.
func startProfiles(cpuPath, memPath string, stderr io.Writer) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// runScenario executes a version-controlled scenario file, locally or
// (with -serve) as a fleet coordinator handing the scenario itself to
// workers as the wire spec.
func runScenario(path, metricsFlag, csvPath, jsonPath string, checked, fast bool, resumeDir string, ckptEvery int64, reps int, serve serveOpts, progress func(experiment.Progress), stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		return fail(stderr, err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		return fail(stderr, err)
	}
	sweep, err := sc.Sweep()
	if err != nil {
		return fail(stderr, err)
	}
	sweep.Check = sweep.Check || checked
	sweep.CheckpointDir = resumeDir
	sweep.CheckpointEvery = ckptEvery
	sweep.Replications = reps
	sweep.Progress = progress
	sweep.Fast = fast
	metrics, err := parseMetrics(metricsFlag)
	if err != nil {
		return fail(stderr, err)
	}
	if serve.addr != "" {
		spec := dsweep.Spec{Scenario: *sc, Check: sweep.Check}
		return serveSweep(sweep, spec, serve, metrics, csvPath, jsonPath, sweep.Check, progress, stdout, stderr)
	}
	tbl, err := sweep.Run()
	if err != nil {
		return fail(stderr, err)
	}
	return emit(tbl, metrics, csvPath, jsonPath, sweep.Check, stdout, stderr)
}

func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", tok, err)
		}
		loads = append(loads, v)
	}
	return loads, nil
}

func parseAlgos(s string) ([]experiment.Algorithm, error) {
	var algos []experiment.Algorithm
	for _, tok := range strings.Split(s, ",") {
		a, err := experiment.ByName(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		algos = append(algos, a)
	}
	return algos, nil
}

func parseMetrics(s string) ([]experiment.Metric, error) {
	known := map[string]experiment.Metric{
		"in_delay":     experiment.InputDelay,
		"out_delay":    experiment.OutputDelay,
		"avg_queue":    experiment.AvgQueue,
		"max_queue":    experiment.MaxQueue,
		"rounds":       experiment.Rounds,
		"throughput":   experiment.Throughput,
		"buffer_bytes": experiment.BufferBytes,
		"hops":         experiment.HopCount,
		"drops":        experiment.DroppedCopies,
	}
	var out []experiment.Metric
	for _, tok := range strings.Split(s, ",") {
		m, ok := known[strings.TrimSpace(tok)]
		if !ok {
			return nil, fmt.Errorf("unknown metric %q", tok)
		}
		out = append(out, m)
	}
	return out, nil
}

func patternFor(family string, b float64, maxFanout int, eOn, mcFrac, skew float64) (experiment.PatternFunc, string, error) {
	switch family {
	case "bernoulli":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, b, n)
		}, fmt.Sprintf("Bernoulli traffic, b=%g", b), nil
	case "uniform":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, maxFanout, n)
		}, fmt.Sprintf("Uniform traffic, maxFanout=%d", maxFanout), nil
	case "burst":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BurstAtLoad(load, b, eOn, n)
		}, fmt.Sprintf("Burst traffic, b=%g, Eon=%g", b, eOn), nil
	case "mixed":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.MixedAtLoad(load, mcFrac, maxFanout, n)
		}, fmt.Sprintf("Mixed traffic, mc=%g, maxFanout=%d", mcFrac, maxFanout), nil
	case "hotspot":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.HotspotAtLoad(load, skew, n)
		}, fmt.Sprintf("Hotspot traffic, skew=%g", skew), nil
	case "diagonal":
		return func(load float64, n int) (traffic.Pattern, error) {
			if load > 1 {
				return nil, fmt.Errorf("diagonal load %v exceeds 1", load)
			}
			return traffic.Diagonal{P: load}, nil
		}, "Diagonal traffic", nil
	default:
		return nil, "", fmt.Errorf("unknown traffic family %q", family)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "voqsweep: %v\n", err)
	return 1
}
