// Command voqsweep runs a custom load sweep — any traffic family, any
// subset of algorithms — and prints the measured series as tables,
// optionally as CSV/JSON.
//
// Usage:
//
//	voqsweep [flags]
//
//	-algos fifoms,tatra,islip,oqfifo   algorithms to compare
//	-traffic bernoulli                 bernoulli | uniform | burst | mixed
//	-loads 0.1,0.2,...                 swept effective loads
//	-b, -maxfanout, -eon, -mcfrac      family shape parameters
//	-n, -slots, -seed, -workers        run setup
//	-metrics in_delay,avg_queue        metrics to print
//	-check                             invariant-check every point (exit 1 on violation)
//	-resume-dir DIR                    make the sweep resumable: finished points and
//	                                   mid-run checkpoints live in DIR, and a re-run
//	                                   with the same flags picks up where it stopped
//	-checkpoint-every K                checkpoint cadence in slots (with -resume-dir)
//	-csv FILE / -json FILE             exports
//	-cpuprofile FILE / -memprofile FILE  pprof profiles of the sweep
//
// Example — reproduce Figure 7's delay panel with extension baselines:
//
//	voqsweep -traffic uniform -maxfanout 8 -algos fifoms,tatra,islip,oqfifo,wba
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"voqsim/internal/experiment"
	"voqsim/internal/scenario"
	"voqsim/internal/traffic"
)

func main() {
	var (
		algosFlag   = flag.String("algos", "fifoms,tatra,islip,oqfifo", "comma-separated algorithms")
		trafficK    = flag.String("traffic", "bernoulli", "traffic family: bernoulli|uniform|burst|mixed|hotspot|diagonal")
		loadsFlag   = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.95", "comma-separated effective loads")
		b           = flag.Float64("b", 0.2, "per-output probability (bernoulli, burst)")
		maxFanout   = flag.Int("maxfanout", 8, "maximum fanout (uniform, mixed)")
		eOn         = flag.Float64("eon", 16, "mean burst length (burst)")
		mcFrac      = flag.Float64("mcfrac", 0.5, "multicast fraction (mixed)")
		skew        = flag.Float64("skew", 4, "hot/cold load ratio (hotspot)")
		n           = flag.Int("n", 16, "switch size N")
		slots       = flag.Int64("slots", 200_000, "slots per point")
		seed        = flag.Uint64("seed", 2004, "base seed")
		workers     = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		metricsFlag = flag.String("metrics", "in_delay,out_delay,avg_queue,max_queue", "metrics to print")
		csvPath     = flag.String("csv", "", "write long-form CSV to this file")
		jsonPath    = flag.String("json", "", "write the full table as JSON to this file")
		configPath  = flag.String("config", "", "run a scenario file instead of flag-built traffic (see internal/scenario)")
		checkRun    = flag.Bool("check", false, "run every point under the runtime invariant checker; exit 1 on any violation")
		resumeDir   = flag.String("resume-dir", "", "checkpoint directory; a re-run of the identical sweep resumes from it")
		ckptEvery   = flag.Int64("checkpoint-every", 0, "checkpoint cadence in slots (with -resume-dir; 0 = a tenth of -slots)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *configPath != "" {
		runScenario(*configPath, *metricsFlag, *csvPath, *jsonPath, *checkRun, *resumeDir, *ckptEvery)
		return
	}

	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		fatal(err)
	}
	algos, err := parseAlgos(*algosFlag)
	if err != nil {
		fatal(err)
	}
	pattern, title, err := patternFor(*trafficK, *b, *maxFanout, *eOn, *mcFrac, *skew)
	if err != nil {
		fatal(err)
	}
	metrics, err := parseMetrics(*metricsFlag)
	if err != nil {
		fatal(err)
	}

	sweep := &experiment.Sweep{
		Name:            "sweep",
		Title:           fmt.Sprintf("%s, %dx%d", title, *n, *n),
		N:               *n,
		Loads:           loads,
		Algorithms:      algos,
		Slots:           *slots,
		Seed:            *seed,
		Workers:         *workers,
		Pattern:         pattern,
		Check:           *checkRun,
		CheckpointDir:   *resumeDir,
		CheckpointEvery: *ckptEvery,
	}
	tbl, err := sweep.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(tbl.Format(metrics...))

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error {
			return tbl.WriteCSV(f, metrics...)
		}); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f *os.File) error {
			return tbl.WriteJSON(f)
		}); err != nil {
			fatal(err)
		}
	}
	reportCheck(tbl, *checkRun)
}

// reportCheck prints the invariant-checker verdict of a checked sweep
// and exits non-zero when any point drew a violation.
func reportCheck(tbl *experiment.Table, checked bool) {
	if !checked {
		return
	}
	if fails := tbl.CheckFailures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "voqsweep: check: %s\n", f)
		}
		fatal(fmt.Errorf("invariant check failed on %d points", len(fails)))
	}
	fmt.Println("check: all points passed the invariant checker")
}

// startProfiles starts CPU profiling and/or arranges a heap profile,
// returning a stop function to run when the measured work is done.
// Either path may be empty. The heap profile is preceded by a GC so it
// shows live steady-state memory, not garbage awaiting collection.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// runScenario executes a version-controlled scenario file.
func runScenario(path, metricsFlag, csvPath, jsonPath string, checked bool, resumeDir string, ckptEvery int64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	sweep, err := sc.Sweep()
	if err != nil {
		fatal(err)
	}
	sweep.Check = sweep.Check || checked
	sweep.CheckpointDir = resumeDir
	sweep.CheckpointEvery = ckptEvery
	metrics, err := parseMetrics(metricsFlag)
	if err != nil {
		fatal(err)
	}
	tbl, err := sweep.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(tbl.Format(metrics...))
	if csvPath != "" {
		if err := writeFile(csvPath, func(f *os.File) error {
			return tbl.WriteCSV(f, metrics...)
		}); err != nil {
			fatal(err)
		}
	}
	if jsonPath != "" {
		if err := writeFile(jsonPath, func(f *os.File) error {
			return tbl.WriteJSON(f)
		}); err != nil {
			fatal(err)
		}
	}
	reportCheck(tbl, sweep.Check)
}

func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", tok, err)
		}
		loads = append(loads, v)
	}
	return loads, nil
}

func parseAlgos(s string) ([]experiment.Algorithm, error) {
	var algos []experiment.Algorithm
	for _, tok := range strings.Split(s, ",") {
		a, err := experiment.ByName(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		algos = append(algos, a)
	}
	return algos, nil
}

func parseMetrics(s string) ([]experiment.Metric, error) {
	known := map[string]experiment.Metric{
		"in_delay":     experiment.InputDelay,
		"out_delay":    experiment.OutputDelay,
		"avg_queue":    experiment.AvgQueue,
		"max_queue":    experiment.MaxQueue,
		"rounds":       experiment.Rounds,
		"throughput":   experiment.Throughput,
		"buffer_bytes": experiment.BufferBytes,
	}
	var out []experiment.Metric
	for _, tok := range strings.Split(s, ",") {
		m, ok := known[strings.TrimSpace(tok)]
		if !ok {
			return nil, fmt.Errorf("unknown metric %q", tok)
		}
		out = append(out, m)
	}
	return out, nil
}

func patternFor(family string, b float64, maxFanout int, eOn, mcFrac, skew float64) (experiment.PatternFunc, string, error) {
	switch family {
	case "bernoulli":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BernoulliAtLoad(load, b, n)
		}, fmt.Sprintf("Bernoulli traffic, b=%g", b), nil
	case "uniform":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.UniformAtLoad(load, maxFanout, n)
		}, fmt.Sprintf("Uniform traffic, maxFanout=%d", maxFanout), nil
	case "burst":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.BurstAtLoad(load, b, eOn, n)
		}, fmt.Sprintf("Burst traffic, b=%g, Eon=%g", b, eOn), nil
	case "mixed":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.MixedAtLoad(load, mcFrac, maxFanout, n)
		}, fmt.Sprintf("Mixed traffic, mc=%g, maxFanout=%d", mcFrac, maxFanout), nil
	case "hotspot":
		return func(load float64, n int) (traffic.Pattern, error) {
			return traffic.HotspotAtLoad(load, skew, n)
		}, fmt.Sprintf("Hotspot traffic, skew=%g", skew), nil
	case "diagonal":
		return func(load float64, n int) (traffic.Pattern, error) {
			if load > 1 {
				return nil, fmt.Errorf("diagonal load %v exceeds 1", load)
			}
			return traffic.Diagonal{P: load}, nil
		}, "Diagonal traffic", nil
	default:
		return nil, "", fmt.Errorf("unknown traffic family %q", family)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "voqsweep: %v\n", err)
	os.Exit(1)
}
