package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"voqsim/internal/dsweep"
	"voqsim/internal/experiment"
	"voqsim/internal/scenario"
)

// Distributed mode: `voqsweep -serve ADDR` turns the command into a
// fleet coordinator — same flags, same stdout tables, but the points
// are simulated by `voqsweep -worker ADDR` processes instead of local
// goroutines. The coordinator announces its bound address on stderr as
//
//	DSWEEP READY host:port
//
// (stderr, so stdout stays byte-identical to a local run of the same
// flags, which the CLI golden tests pin).

// serveOpts carries the coordinator-mode knobs from flag parsing.
type serveOpts struct {
	addr    string
	ttl     time.Duration
	verbose bool // stream fleet events (joins, losses, re-leases) to stderr
}

// trafficSpecFor maps the flag-built traffic family onto the scenario
// form used as the worker wire spec, carrying only the parameters the
// family reads so the spec JSON stays canonical.
func trafficSpecFor(family string, b float64, maxFanout int, eOn, mcFrac, skew float64) (scenario.TrafficSpec, error) {
	switch family {
	case "bernoulli":
		return scenario.TrafficSpec{Family: family, B: b}, nil
	case "uniform":
		return scenario.TrafficSpec{Family: family, MaxFanout: maxFanout}, nil
	case "burst":
		return scenario.TrafficSpec{Family: family, B: b, EOn: eOn}, nil
	case "mixed":
		return scenario.TrafficSpec{Family: family, MulticastFrac: mcFrac, MaxFanout: maxFanout}, nil
	case "hotspot":
		return scenario.TrafficSpec{Family: family, Skew: skew}, nil
	case "diagonal":
		return scenario.TrafficSpec{Family: family}, nil
	default:
		return scenario.TrafficSpec{}, fmt.Errorf("unknown traffic family %q", family)
	}
}

// serveSweep runs the sweep as a fleet coordinator and emits the
// merged table exactly as a local run would.
func serveSweep(sweep *experiment.Sweep, spec dsweep.Spec, opts serveOpts,
	metrics []experiment.Metric, csvPath, jsonPath string, checked bool,
	progress func(experiment.Progress), stdout, stderr io.Writer) int {

	cfg := dsweep.Config{
		Sweep:           sweep,
		Spec:            spec,
		LeaseTTL:        opts.ttl,
		CheckpointEvery: sweep.CheckpointEvery,
		Progress:        progress,
	}
	if opts.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "voqsweep: fleet: "+format+"\n", args...)
		}
	}
	c, err := dsweep.NewCoordinator(cfg)
	if err != nil {
		return fail(stderr, err)
	}
	addr, err := c.Listen(opts.addr)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stderr, "DSWEEP READY %s\n", addr)
	tbl, err := c.Serve()
	if err != nil {
		return fail(stderr, err)
	}
	if opts.verbose {
		// One summary line per fleet counter, so kills, expiries and
		// re-leases of the finished run are auditable from the shell.
		for _, m := range c.Metrics() {
			fmt.Fprintf(stderr, "voqsweep: fleet: %s=%d\n", m.Name, m.Value)
		}
	}
	return emit(tbl, metrics, csvPath, jsonPath, checked, stdout, stderr)
}

// runWorkerMode runs the process as one fleet worker until the
// coordinator reports the sweep done.
func runWorkerMode(addr, name string, verbose bool, stderr io.Writer) int {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	cfg := dsweep.WorkerConfig{Addr: addr, Name: name}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "voqsweep: worker %s: "+format+"\n", append([]any{name}, args...)...)
		}
	}
	if err := dsweep.RunWorker(cfg); err != nil {
		return fail(stderr, err)
	}
	return 0
}
