package main

import (
	"bytes"
	"strings"
	"testing"
)

// sweepArgs is a deliberately small grid so the whole command runs in
// well under a second.
var sweepArgs = []string{
	"-traffic", "uniform", "-maxfanout", "4",
	"-algos", "fifoms,islip",
	"-loads", "0.3,0.7",
	"-n", "8", "-slots", "2000", "-seed", "11",
}

func runCmd(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("voqsweep %v exited %d\nstderr: %s", args, code, errBuf.String())
	}
	return out.String(), errBuf.String()
}

// TestProgressLeavesStdoutByteIdentical is the -progress golden: the
// flag may only talk to stderr, so stdout with it on must equal stdout
// with it off, byte for byte.
func TestProgressLeavesStdoutByteIdentical(t *testing.T) {
	plain, plainErr := runCmd(t, sweepArgs...)
	withProgress, progressErr := runCmd(t, append([]string{"-progress"}, sweepArgs...)...)

	if withProgress != plain {
		t.Errorf("-progress changed stdout\nwithout: %q\nwith:    %q", plain, withProgress)
	}
	if plain == "" {
		t.Error("sweep produced no stdout at all")
	}
	if plainErr != "" {
		t.Errorf("unexpected stderr without -progress: %q", plainErr)
	}
	lines := strings.Split(strings.TrimSuffix(progressErr, "\n"), "\n")
	if want := 2 * 2; len(lines) != want { // one line per grid point
		t.Fatalf("-progress wrote %d stderr lines, want %d:\n%s", len(lines), want, progressErr)
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "voqsweep: 4/4 ") || !strings.Contains(last, "eta") {
		t.Errorf("final progress line malformed: %q", last)
	}
}

// TestStdoutDeterministic pins that repeated runs with identical flags
// print identical tables regardless of worker count.
func TestStdoutDeterministic(t *testing.T) {
	first, _ := runCmd(t, sweepArgs...)
	again, _ := runCmd(t, append([]string{"-workers", "4"}, sweepArgs...)...)
	if first != again {
		t.Errorf("stdout differs across runs/worker counts\nfirst: %q\nagain: %q", first, again)
	}
}

// TestTopologySweepDeterministic pins that a multi-stage fabric sweep
// renders the fabric metrics and prints byte-identical tables for any
// worker count — fabric points must parallelise as cleanly as
// single-switch points.
func TestTopologySweepDeterministic(t *testing.T) {
	args := []string{
		"-topology", "fattree:k=4",
		"-algos", "fifoms,pim",
		"-traffic", "bernoulli", "-b", "0.12",
		"-loads", "0.2,0.4",
		"-slots", "2000", "-seed", "11",
		"-metrics", "in_delay,hops,drops",
	}
	first, _ := runCmd(t, append([]string{"-workers", "1"}, args...)...)
	again, _ := runCmd(t, append([]string{"-workers", "4"}, args...)...)
	if first != again {
		t.Errorf("fabric sweep stdout differs across worker counts\nfirst: %q\nagain: %q", first, again)
	}
	for _, want := range []string{"fattree:k=4", "fifoms@fattree:k=4", "switches traversed"} {
		if !strings.Contains(first, want) {
			t.Errorf("fabric sweep output missing %q:\n%s", want, first)
		}
	}
}

// TestParallelReplicationsDeterministic pins the -parallel surface: a
// replicated sweep prints byte-identical tables for any worker count,
// and differs from the single-run table only by the extra samples.
func TestParallelReplicationsDeterministic(t *testing.T) {
	args := append([]string{"-parallel", "3"}, sweepArgs...)
	first, _ := runCmd(t, append([]string{"-workers", "1"}, args...)...)
	again, _ := runCmd(t, append([]string{"-workers", "4"}, args...)...)
	if first != again {
		t.Errorf("replicated sweep stdout differs across worker counts\nfirst: %q\nagain: %q", first, again)
	}
	single, _ := runCmd(t, sweepArgs...)
	if first == single {
		t.Error("-parallel 3 printed the single-run table; replications were not merged")
	}
}

// TestParallelRejectsIncompatibleModes pins the interlocks: replicated
// sweeps are in-process only and cannot be checkpointed.
func TestParallelRejectsIncompatibleModes(t *testing.T) {
	for _, extra := range [][]string{
		{"-serve", "127.0.0.1:0"},
		{"-worker", "127.0.0.1:1"},
		{"-resume-dir", t.TempDir()},
	} {
		args := append(append([]string{"-parallel", "2"}, extra...), sweepArgs...)
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("%v accepted with -parallel", extra)
		}
	}
}

func TestBadFlagFails(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-algos", "nosuch"}, &out, &errBuf); code == 0 {
		t.Fatal("unknown algorithm accepted")
	}
	if out.Len() != 0 {
		t.Errorf("failure wrote to stdout: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "nosuch") {
		t.Errorf("stderr does not name the bad algorithm: %q", errBuf.String())
	}
}
