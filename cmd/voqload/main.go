// Command voqload drives a running voqd to a chosen offered load and
// measures what came back: the saturation-curve instrument for the
// live daemon (EXPERIMENTS.md "Saturating the live daemon").
//
// It replays the simulator's traffic models (internal/traffic) over
// real UDP sockets — one data frame per model arrival — and, when an
// admin address is given, also subscribes a receiver to every output
// and reports delivered copies and per-copy slot delays alongside the
// send-side rates.
//
// Usage:
//
//	voqload [flags]
//	    -targets a0,a1,...   voqd ingress addresses, one per input, in
//	                         port order (copy from the voqd READY line)
//	    -admin host:port     voqd admin address; enables the delivery
//	                         receiver and the delivery report
//	    -traffic bernoulli   bernoulli|uniform|burst|mixed
//	    -load 0.8 -b 0.2 -maxfanout 8 -eon 16 -mcfrac 0.5
//	                         model parameters (as cmd/voqsim)
//	    -slots 100000        model slots to generate
//	    -slot-rate 0         pacing in model slots/second (0: unpaced);
//	                         match the daemon's 1/slot-period to offer
//	                         load without forcing ingress drops
//	    -payload 64          payload bytes per frame
//	    -seed 1              model seed
//	    -drain 2s            after sending, wait this long for
//	                         deliveries to quiesce
//
// The report is one line per fact, "key: value", ending with a READY
// line-style summary:
//
//	RESULT sent=... copies=... send_pps=... recv=... completed=... mean_delay=... drops=...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"voqsim/internal/daemon"
	"voqsim/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voqload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		targets   = flag.String("targets", "", "comma-separated voqd ingress addresses, one per input")
		admin     = flag.String("admin", "", "voqd admin address (enables the delivery receiver)")
		trafficK  = flag.String("traffic", "bernoulli", "bernoulli|uniform|burst|mixed")
		load      = flag.Float64("load", 0.8, "target effective load")
		b         = flag.Float64("b", 0.2, "per-output probability")
		maxFanout = flag.Int("maxfanout", 8, "maximum fanout")
		eOn       = flag.Float64("eon", 16, "mean burst length")
		mcFrac    = flag.Float64("mcfrac", 0.5, "multicast fraction")
		slots     = flag.Int64("slots", 100_000, "model slots to generate")
		slotRate  = flag.Float64("slot-rate", 0, "pacing in model slots per second (0: unpaced)")
		payload   = flag.Int("payload", 64, "payload bytes per frame")
		seed      = flag.Uint64("seed", 1, "traffic model seed")
		drain     = flag.Duration("drain", 2*time.Second, "post-send wait for deliveries to quiesce")
	)
	flag.Parse()

	if *targets == "" {
		return fmt.Errorf("-targets is required (copy the ingress list from the voqd READY line)")
	}
	addrs, err := parseTargets(*targets)
	if err != nil {
		return err
	}
	n := len(addrs)

	var pat traffic.Pattern
	switch *trafficK {
	case "bernoulli":
		pat, err = traffic.BernoulliAtLoad(*load, *b, n)
	case "uniform":
		pat, err = traffic.UniformAtLoad(*load, *maxFanout, n)
	case "burst":
		pat, err = traffic.BurstAtLoad(*load, *b, *eOn, n)
	case "mixed":
		pat, err = traffic.MixedAtLoad(*load, *mcFrac, *maxFanout, n)
	default:
		return fmt.Errorf("unknown traffic family %q", *trafficK)
	}
	if err != nil {
		return err
	}

	var recv *daemon.Receiver
	if *admin != "" {
		recv, err = daemon.NewReceiver(n)
		if err != nil {
			return err
		}
		defer recv.Close()
		if err := subscribe(*admin, "subscribe", recv.Addr()); err != nil {
			return err
		}
		defer subscribe(*admin, "unsubscribe", recv.Addr())
	}

	rep, err := daemon.RunLoad(daemon.LoadConfig{
		Targets:  addrs,
		Pattern:  pat,
		Seed:     *seed,
		Slots:    *slots,
		SlotRate: *slotRate,
		Payload:  *payload,
	})
	if err != nil {
		return err
	}
	fmt.Printf("inputs:        %d\n", n)
	fmt.Printf("model:         %s load=%.3f\n", *trafficK, *load)
	fmt.Printf("frames sent:   %d (%d copies addressed)\n", rep.FramesSent, rep.CopiesExpected)
	fmt.Printf("send rate:     %.0f frames/s over %d slots (%.0f slots/s)\n", rep.FrameRate, rep.Slots, rep.SlotRate)

	var rs daemon.ReceiverStats
	var drops int64 = -1
	if recv != nil {
		quiesce(recv, *drain)
		rs = recv.Stats()
		fmt.Printf("received:      %d copies, %d completed packets, %d bad frames\n", rs.Frames, rs.Completed, rs.Bad)
		if rs.Frames > 0 {
			fmt.Printf("copy delay:    mean %.2f slots, max %d slots\n", rs.MeanCopyDelay, rs.MaxCopyDelay)
		}
		if d, err := fetchDrops(*admin); err == nil {
			drops = d
			fmt.Printf("daemon drops:  %d (ingress ring + egress queue)\n", d)
		}
	}
	fmt.Printf("RESULT sent=%d copies=%d send_pps=%.0f recv=%d completed=%d mean_delay=%.2f drops=%d\n",
		rep.FramesSent, rep.CopiesExpected, rep.FrameRate, rs.Frames, rs.Completed, rs.MeanCopyDelay, drops)
	return nil
}

func parseTargets(s string) ([]*net.UDPAddr, error) {
	parts := strings.Split(s, ",")
	addrs := make([]*net.UDPAddr, len(parts))
	for i, p := range parts {
		a, err := net.ResolveUDPAddr("udp", strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("target %d %q: %w", i, p, err)
		}
		addrs[i] = a
	}
	return addrs, nil
}

func subscribe(admin, verb string, addr *net.UDPAddr) error {
	u := fmt.Sprintf("http://%s/%s?out=all&addr=%s", admin, verb, url.QueryEscape(addr.String()))
	resp, err := http.Post(u, "", nil)
	if err != nil {
		return fmt.Errorf("%s: %w", verb, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: admin returned %s", verb, resp.Status)
	}
	return nil
}

// quiesce waits until the receiver's frame count stops moving (or the
// timeout passes): UDP gives no end-of-stream, so "no new copies for a
// few polls" is the drain criterion.
func quiesce(r *daemon.Receiver, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	last, still := int64(-1), 0
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		cur := r.Stats().Frames
		if cur == last {
			still++
			if still >= 3 {
				return
			}
		} else {
			still = 0
		}
		last = cur
	}
}

// fetchDrops reads the daemon's drop counters from /metrics.
func fetchDrops(admin string) (int64, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", admin))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m daemon.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	return m.Daemon.RingDrops + m.Daemon.EgressDrops, nil
}
