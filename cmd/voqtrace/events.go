package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"voqsim/internal/obs"
	"voqsim/internal/report"
)

// eventInput returns the event-trace source for a subcommand: the
// single positional file argument if one was given, stdin otherwise.
// The caller must call the returned closer.
func eventInput(fs *flag.FlagSet) (*os.File, func(), error) {
	switch fs.NArg() {
	case 0:
		return os.Stdin, func() {}, nil
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("at most one trace file argument, got %d", fs.NArg())
	}
}

// timeline renders a slot-level event trace (voqsim -trace output) as
// a human-readable per-slot timeline, optionally filtered by slot
// range, port or event type.
func timeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	var (
		from  = fs.Int64("from", 0, "first slot to show")
		to    = fs.Int64("to", -1, "last slot to show (-1: end of trace)")
		in    = fs.Int("in", -1, "only events touching this input port")
		out   = fs.Int("out", -1, "only events touching this output port")
		evStr = fs.String("ev", "", "only this event type (arrival|enqueue|request|grant|departure|split|drop)")
	)
	fs.Parse(args)

	src, closeSrc, err := eventInput(fs)
	if err != nil {
		return err
	}
	defer closeSrc()
	events, err := report.ReadEventsJSONL(src)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var lastSlot int64 = -1
	shown := 0
	for _, e := range events {
		if e.Slot < *from || (*to >= 0 && e.Slot > *to) {
			continue
		}
		if *in >= 0 && int(e.In) != *in {
			continue
		}
		if *out >= 0 && int(e.Out) != *out {
			continue
		}
		if *evStr != "" && e.Type.String() != *evStr {
			continue
		}
		if e.Slot != lastSlot {
			if lastSlot >= 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "slot %d:\n", e.Slot)
			lastSlot = e.Slot
		}
		fmt.Fprintf(w, "  %s\n", describe(e))
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(w, "no matching events")
	}
	return nil
}

// describe renders one event for the timeline.
func describe(e obs.Event) string {
	switch e.Type {
	case obs.EvArrival:
		return fmt.Sprintf("arrival    in=%d pkt=%d fanout=%d", e.In, e.Packet, e.Aux)
	case obs.EvEnqueue:
		if e.Out < 0 {
			return fmt.Sprintf("enqueue    in=%d pkt=%d queue=mc-fifo", e.In, e.Packet)
		}
		return fmt.Sprintf("enqueue    in=%d pkt=%d queue=voq[%d][%d]", e.In, e.Packet, e.In, e.Out)
	case obs.EvRequest:
		return fmt.Sprintf("request    in=%d -> out=%d round=%d ts=%d", e.In, e.Out, e.Round, e.TS)
	case obs.EvGrant:
		return fmt.Sprintf("grant      out=%d -> in=%d round=%d ts=%d", e.Out, e.In, e.Round, e.TS)
	case obs.EvDeparture:
		last := ""
		if e.Aux == 1 {
			last = " (last copy)"
		}
		return fmt.Sprintf("departure  in=%d -> out=%d pkt=%d%s", e.In, e.Out, e.Packet, last)
	case obs.EvFanoutSplit:
		return fmt.Sprintf("split      in=%d pkt=%d residue=%d", e.In, e.Packet, e.Aux)
	default:
		return e.String()
	}
}

// explain answers "why did input I not get output J in slot S" from
// the recorded requests, grants and HOL timestamps of that slot.
func explain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		in   = fs.Int("in", -1, "input port I")
		out  = fs.Int("out", -1, "output port J")
		slot = fs.Int64("slot", -1, "slot S")
	)
	fs.Parse(args)
	if *in < 0 || *out < 0 || *slot < 0 {
		return fmt.Errorf("explain needs -in, -out and -slot")
	}

	src, closeSrc, err := eventInput(fs)
	if err != nil {
		return err
	}
	defer closeSrc()
	events, err := report.ReadEventsJSONL(src)
	if err != nil {
		return err
	}

	// Collect the slot's arbitration record for output J plus input
	// I's own activity.
	var (
		slotSeen    bool
		myRequests  []obs.Event // I -> J
		anyRequests []obs.Event // I -> anywhere
		grantsToJ   []obs.Event // J -> anyone
		myGrants    []obs.Event // J -> I
		departed    bool
		matchedTo   = -1 // output I departed to, if any
	)
	for _, e := range events {
		if e.Slot != *slot {
			continue
		}
		slotSeen = true
		switch e.Type {
		case obs.EvRequest:
			if int(e.In) == *in {
				anyRequests = append(anyRequests, e)
				if int(e.Out) == *out {
					myRequests = append(myRequests, e)
				}
			}
		case obs.EvGrant:
			if int(e.Out) == *out {
				grantsToJ = append(grantsToJ, e)
				if int(e.In) == *in {
					myGrants = append(myGrants, e)
				}
			}
		case obs.EvDeparture:
			if int(e.In) == *in {
				if int(e.Out) == *out {
					departed = true
				}
				matchedTo = int(e.Out)
			}
		}
	}

	fmt.Printf("slot %d, input %d, output %d:\n", *slot, *in, *out)
	switch {
	case !slotSeen:
		fmt.Println("  no events recorded for this slot (outside the traced range, or an idle slot).")
	case departed:
		fmt.Printf("  input %d DID get output %d: a cell departed across that pair.\n", *in, *out)
		for _, g := range myGrants {
			fmt.Printf("  granted in round %d (HOL timestamp %d).\n", g.Round, g.TS)
		}
	case len(myRequests) == 0 && len(anyRequests) == 0:
		fmt.Printf("  input %d issued no requests at all this slot: it had no eligible\n", *in)
		fmt.Println("  head-of-line cell (empty queues), or it was already matched in an")
		fmt.Println("  earlier round and left the free-input set.")
		if matchedTo >= 0 {
			fmt.Printf("  (it was in fact matched: a cell departed to output %d.)\n", matchedTo)
		}
	case len(myRequests) == 0:
		outs := make(map[int32]bool)
		for _, r := range anyRequests {
			outs[r.Out] = true
		}
		sorted := make([]int, 0, len(outs))
		for o := range outs {
			sorted = append(sorted, int(o))
		}
		sort.Ints(sorted)
		fmt.Printf("  input %d requested outputs %v but never output %d: its HOL cells'\n", *in, sorted, *out)
		fmt.Printf("  destination sets did not include %d (or that VOQ was empty).\n", *out)
	default:
		req := myRequests[0]
		fmt.Printf("  input %d requested output %d (round %d, HOL timestamp %d) but was\n",
			*in, *out, req.Round, req.TS)
		fmt.Println("  not granted. Competing grants at that output:")
		if len(grantsToJ) == 0 {
			fmt.Println("    (none recorded — the output granted a different class or the")
			fmt.Println("    grant went unaccepted; see the timeline for the full exchange.)")
		}
		for _, g := range grantsToJ {
			verdict := "won"
			switch {
			case g.TS >= 0 && req.TS >= 0 && g.TS < req.TS:
				verdict = fmt.Sprintf("older HOL timestamp (%d < %d) wins", g.TS, req.TS)
			case g.TS >= 0 && req.TS >= 0 && g.TS == req.TS:
				verdict = fmt.Sprintf("equal timestamps (%d): tie broken against input %d", g.TS, *in)
			case g.TS < 0:
				verdict = "scheduler does not arbitrate on timestamps (pointer/random pick)"
			}
			fmt.Printf("    round %d: granted to input %d — %s.\n", g.Round, g.In, verdict)
		}
	}
	return nil
}
