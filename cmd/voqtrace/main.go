// Command voqtrace records arrival traces and replays them through any
// scheduler, so different algorithms can be compared on *identical*
// arrival sequences (not just identically distributed ones) and
// externally captured workloads can be fed to the simulator.
//
// Usage:
//
//	voqtrace record [flags] > trace.jsonl
//	    -traffic bernoulli -load 0.8 -b 0.2 -n 16 -slots 100000 -seed 1
//	    (same traffic flags as cmd/voqsim)
//
//	voqtrace run -algo fifoms [-check] < trace.jsonl
//	    replays the trace and prints the run's statistics; -check
//	    replays under the runtime invariant checker, which is how a
//	    voqd arrival transcript (voqd -record) is certified
//
//	voqtrace info < trace.jsonl
//	    prints the trace's measured load and fanout
//
// The timeline and explain subcommands consume slot-level *event*
// traces (voqsim -trace out.jsonl), not arrival traces. Both read the
// trace from a positional file argument, or from stdin when none is
// given:
//
//	voqtrace timeline [-from S] [-to S] [-in I] [-out O] [-ev TYPE] [events.jsonl]
//	    renders a per-slot timeline of arrivals, requests, grants,
//	    departures and fanout splits
//
//	voqtrace explain -in I -out J -slot S [events.jsonl]
//	    answers "why did input I not get output J in slot S" from the
//	    recorded requests, grants and HOL timestamps
package main

import (
	"flag"
	"fmt"
	"os"

	"voqsim/internal/check"
	"voqsim/internal/experiment"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = record(args)
	case "run":
		err = run(args)
	case "info":
		err = info()
	case "timeline":
		err = timeline(args)
	case "explain":
		err = explain(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "voqtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: voqtrace record|run|info|timeline|explain [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		trafficK  = fs.String("traffic", "bernoulli", "bernoulli|uniform|burst|mixed")
		load      = fs.Float64("load", 0.8, "target effective load")
		b         = fs.Float64("b", 0.2, "per-output probability")
		maxFanout = fs.Int("maxfanout", 8, "maximum fanout")
		eOn       = fs.Float64("eon", 16, "mean burst length")
		mcFrac    = fs.Float64("mcfrac", 0.5, "multicast fraction")
		n         = fs.Int("n", 16, "switch size")
		slots     = fs.Int64("slots", 100_000, "slots to record")
		seed      = fs.Uint64("seed", 1, "seed")
	)
	fs.Parse(args)

	var pat traffic.Pattern
	var err error
	switch *trafficK {
	case "bernoulli":
		pat, err = traffic.BernoulliAtLoad(*load, *b, *n)
	case "uniform":
		pat, err = traffic.UniformAtLoad(*load, *maxFanout, *n)
	case "burst":
		pat, err = traffic.BurstAtLoad(*load, *b, *eOn, *n)
	case "mixed":
		pat, err = traffic.MixedAtLoad(*load, *mcFrac, *maxFanout, *n)
	default:
		return fmt.Errorf("unknown traffic family %q", *trafficK)
	}
	if err != nil {
		return err
	}
	tr := traffic.Record(pat, *n, *slots, xrand.New(*seed))
	return tr.Write(os.Stdout)
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		algo = fs.String("algo", "fifoms", "scheduling algorithm")
		seed = fs.Uint64("seed", 1, "switch-side seed (tie breaks)")
		chk  = fs.Bool("check", false, "replay under the runtime invariant checker (DESIGN.md §9); nonzero exit on violations")
	)
	fs.Parse(args)

	tr, err := traffic.ReadTrace(os.Stdin)
	if err != nil {
		return err
	}
	a, err := experiment.ByName(*algo)
	if err != nil {
		return err
	}
	// The switch-side derivation Split("switch", 0) is pinned across
	// voqsim, voqd and here: replaying a daemon's recorded arrival
	// transcript with the daemon's algo and seed reproduces the live
	// delivery stream draw for draw, and with -check certifies it
	// against the full invariant catalogue (docs/OPERATIONS.md).
	sw := a.New(tr.N, xrand.New(*seed).Split("switch", 0))
	// WarmupFrac -1 disables the warmup cut: a replayed trace is the
	// whole population (a daemon transcript's traffic may sit anywhere
	// in the slot range), so the reported statistics cover every
	// recorded arrival — the delay/throughput numbers are directly
	// comparable with the live daemon's own counters.
	cfg := switchsim.Config{Slots: tr.Slots, Seed: *seed, WarmupFrac: -1}
	if *chk {
		res, ck, cerr := switchsim.CheckedRun(a.Name, sw, tr.Pattern(), cfg, xrand.New(*seed), check.Options{})
		fmt.Println(res.Describe())
		if cerr != nil {
			for _, v := range ck.Violations() {
				fmt.Fprintf(os.Stderr, "violation: %v\n", v)
			}
			return cerr
		}
		fmt.Println("check: all invariants held")
		return nil
	}
	res := switchsim.New(sw, tr.Pattern(), cfg, xrand.New(*seed)).Run(a.Name)
	fmt.Println(res.Describe())
	return nil
}

func info() error {
	tr, err := traffic.ReadTrace(os.Stdin)
	if err != nil {
		return err
	}
	fmt.Printf("ports:        %d\n", tr.N)
	fmt.Printf("slots:        %d\n", tr.Slots)
	fmt.Printf("arrivals:     %d\n", len(tr.Arrivals))
	fmt.Printf("load:         %.4f copies/output/slot\n", tr.MeasuredLoad())
	fmt.Printf("mean fanout:  %.4f\n", tr.MeasuredMeanFanout())
	return nil
}
