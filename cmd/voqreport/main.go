// Command voqreport runs the full reproduction — all five paper
// figures, the extension experiments, the saturation search and the
// scaling study — and writes the paper-versus-measured Markdown report
// (the repository's EXPERIMENTS.md) to stdout or a file.
//
// Usage:
//
//	voqreport [-slots 200000] [-seed 2004] [-workers K]
//	          [-skip-extensions] [-o EXPERIMENTS.md]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"voqsim/internal/report"
)

func main() {
	var (
		slots   = flag.Int64("slots", 0, "slots per sweep point (0 = 200000; paper: 1000000)")
		seed    = flag.Uint64("seed", 2004, "base seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		skipExt = flag.Bool("skip-extensions", false, "only the paper's five figures")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "voqreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	err := report.Generate(report.Options{
		Slots: *slots, Seed: *seed, Workers: *workers, SkipExtensions: *skipExt,
	}, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "voqreport: %v\n", err)
		os.Exit(1)
	}
}
