// Command voqfigs regenerates the evaluation figures of "FIFO Based
// Multicast Scheduling Algorithm for VOQ Packet Switches" (Pan & Yang,
// ICPP 2004): Figures 4-8 plus the extension sweeps, printed as
// aligned tables and ASCII plots, optionally exported as CSV/JSON, and
// checked against the paper's qualitative claims.
//
// Usage:
//
//	voqfigs [flags]
//
//	-figs fig4,fig5     which sweeps to run (default: all paper figures)
//	-slots 1000000      slots per point (default 200000; paper: 1e6)
//	-n 16               switch size
//	-seed 2004          base seed
//	-extended           add PIM/WBA/no-split baselines
//	-plots              render ASCII plots alongside tables
//	-out DIR            also write <fig>.csv and <fig>.json into DIR
//	-workers K          parallel simulations (default: all cores)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"voqsim/internal/asciiplot"
	"voqsim/internal/experiment"
)

func main() {
	var (
		figsFlag = flag.String("figs", "fig4,fig5,fig6,fig7,fig8", "comma-separated sweeps to run (fig4..fig8, ablation-rounds, ablation-splitting, ablation-criterion, speedup, hotspot, industry, memory, mixed, all)")
		slots    = flag.Int64("slots", 0, "slots per point (0 = 200000; the paper uses 1000000)")
		n        = flag.Int("n", 16, "switch size N")
		seed     = flag.Uint64("seed", 2004, "base seed")
		extended = flag.Bool("extended", false, "include extension baselines (pim, wba, fifoms-nosplit)")
		plots    = flag.Bool("plots", false, "render ASCII plots")
		outDir   = flag.String("out", "", "directory for CSV/JSON exports")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
	)
	flag.Parse()

	opts := experiment.Options{
		N: *n, Slots: *slots, Seed: *seed, Extended: *extended, Workers: *workers,
	}
	available := experiment.Figures(opts)
	for name, sw := range experiment.Extensions(opts) {
		available[name] = sw
	}

	var names []string
	if *figsFlag == "all" {
		for name := range available {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		names = strings.Split(*figsFlag, ",")
	}

	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		sweep, ok := available[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "voqfigs: unknown sweep %q\n", name)
			failed = true
			continue
		}
		if err := runSweep(sweep, *plots, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "voqfigs: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func runSweep(sweep *experiment.Sweep, plots bool, outDir string) error {
	fmt.Printf("==> %s: %s (slots=%d per point)\n", sweep.Name, sweep.Title, effectiveSlots(sweep.Slots))
	tbl, err := sweep.Run()
	if err != nil {
		return err
	}

	metrics := experiment.FigureMetrics()
	switch sweep.Name {
	case "fig5":
		metrics = []experiment.Metric{experiment.Rounds}
	case "memory":
		metrics = []experiment.Metric{experiment.BufferBytes, experiment.AvgQueue}
	}
	fmt.Println(tbl.Format(metrics...))

	if plots {
		for _, m := range metrics {
			p := asciiplot.Plot{
				Title:  fmt.Sprintf("%s — %s", tbl.Title, m.Label),
				XLabel: "effective load",
				YLabel: m.Name,
				Xs:     tbl.Loads,
				LogY:   m.Saturating,
			}
			for _, algo := range tbl.Algos {
				ys, err := tbl.Series(algo, m)
				if err != nil {
					return err
				}
				p.Series = append(p.Series, asciiplot.Series{Name: algo, Ys: ys})
			}
			fmt.Println(p.Render())
		}
	}

	if violations := tbl.Check(); len(violations) == 0 {
		fmt.Printf("shape check: PASS (paper's qualitative claims hold)\n\n")
	} else {
		fmt.Printf("shape check: %d violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  - %s\n", v)
		}
		fmt.Println()
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("creating %s: %w", outDir, err)
		}
		csvPath := filepath.Join(outDir, tbl.Name+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		allMetrics := append(experiment.FigureMetrics(), experiment.Rounds, experiment.Throughput)
		if err := tbl.WriteCSV(f, allMetrics...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		jsonPath := filepath.Join(outDir, tbl.Name+".json")
		g, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := tbl.WriteJSON(g); err != nil {
			g.Close()
			return err
		}
		if err := g.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n\n", csvPath, jsonPath)
	}
	return nil
}

func effectiveSlots(s int64) int64 {
	if s <= 0 {
		return 200_000
	}
	return s
}
