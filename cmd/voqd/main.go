// Command voqd runs the multicast VOQ switch as a live UDP
// packet-switching daemon (docs/OPERATIONS.md is the operator guide).
//
// One UDP ingress socket per input port accepts data frames (source
// port, destination bitmap, payload), the configured scheduler —
// FIFOMS by default — arbitrates on a fixed-tick slot clock, and every
// delivered copy egresses as a delivery frame to the subscribers of
// its output port. An HTTP admin listener serves /healthz, /metrics,
// /queues, /subscribe, /unsubscribe and /checkpoint.
//
// Usage:
//
//	voqd [flags]
//	    -n 8 -algo fifoms -seed 1
//	    -ingress 127.0.0.1:0     base ingress address; input i listens on
//	                             port+i, port 0 binds ephemeral ports
//	    -admin 127.0.0.1:0       admin HTTP address ("" disables)
//	    -pprof                   also mount /debug/pprof on the admin
//	                             server (off by default)
//	    -slot-period 20us        slot clock tick
//	    -max-input-cells 1024    per-input buffered-cell bound (overload policy)
//	    -ingress-backlog 256     per-input decoded-frame ring
//	    -subscribe all=host:port subscribe an address at startup
//	                             (out=addr or all=addr; repeatable)
//	    -checkpoint FILE         crash-recovery snapshot path
//	    -checkpoint-every K      snapshot cadence in slots (default 100000)
//	    -resume                  restore FILE at startup when it exists
//	    -record FILE             write the admitted-arrival transcript
//	                             (trace JSONL, replayable by voqtrace run)
//	                             at shutdown
//	    -duration D              exit cleanly after D (default: run until
//	                             SIGINT/SIGTERM)
//
// Once serving, voqd prints one machine-readable line:
//
//	READY ports=N algo=A seed=S ingress=addr0,addr1,... admin=addr
//
// which voqload and the loopback tests parse for the ephemeral ports.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"voqsim/internal/daemon"
)

// subscribeFlag collects repeated -subscribe out=addr values.
type subscribeFlag struct {
	outs  []int // -1 = all
	addrs []string
}

func (s *subscribeFlag) String() string { return strings.Join(s.addrs, ",") }

func (s *subscribeFlag) Set(v string) error {
	out, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want out=addr or all=addr, got %q", v)
	}
	o := -1
	if out != "all" {
		p, err := strconv.Atoi(out)
		if err != nil {
			return fmt.Errorf("output %q: %v", out, err)
		}
		o = p
	}
	s.outs = append(s.outs, o)
	s.addrs = append(s.addrs, addr)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "voqd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var subs subscribeFlag
	var (
		n          = flag.Int("n", 8, "switch size (input and output ports)")
		algo       = flag.String("algo", "fifoms", "scheduling algorithm")
		seed       = flag.Uint64("seed", 1, "arbiter seed (mirror replays need it)")
		ingress    = flag.String("ingress", "127.0.0.1:0", "base ingress address; input i listens on port+i (0 = ephemeral)")
		admin      = flag.String("admin", "127.0.0.1:0", "admin HTTP address; empty disables")
		pprofOn    = flag.Bool("pprof", false, "mount /debug/pprof on the admin server (profiling a live daemon)")
		slotPeriod = flag.Duration("slot-period", 20*time.Microsecond, "slot clock tick")
		maxCells   = flag.Int("max-input-cells", 1024, "per-input buffered data cell bound")
		backlog    = flag.Int("ingress-backlog", 256, "per-input decoded-frame ring capacity")
		checkpoint = flag.String("checkpoint", "", "crash-recovery snapshot path")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "checkpoint cadence in slots (default 100000 with -checkpoint)")
		resume     = flag.Bool("resume", false, "restore -checkpoint at startup when the file exists")
		record     = flag.String("record", "", "write the admitted-arrival transcript (trace JSONL) at shutdown")
		duration   = flag.Duration("duration", 0, "exit cleanly after this long (0: run until SIGINT/SIGTERM)")
	)
	flag.Var(&subs, "subscribe", "out=addr or all=addr delivery subscription (repeatable)")
	flag.Parse()

	if *slotPeriod <= 0 {
		return fmt.Errorf("-slot-period must be positive (the manual clock is library-only)")
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	d, err := daemon.New(daemon.Config{
		Ports:           *n,
		Algo:            *algo,
		Seed:            *seed,
		Ingress:         *ingress,
		Admin:           *admin,
		Pprof:           *pprofOn,
		SlotPeriod:      *slotPeriod,
		MaxInputCells:   *maxCells,
		IngressBacklog:  *backlog,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		Record:          *record != "",
		RecordPath:      *record,
	})
	if err != nil {
		return err
	}
	for i := range subs.addrs {
		addr, err := net.ResolveUDPAddr("udp", subs.addrs[i])
		if err != nil {
			return fmt.Errorf("-subscribe %q: %w", subs.addrs[i], err)
		}
		if err := d.Subscribe(subs.outs[i], addr); err != nil {
			return err
		}
	}
	d.Start()

	inAddrs := make([]string, 0, *n)
	for _, a := range d.IngressAddrs() {
		inAddrs = append(inAddrs, a.String())
	}
	adminStr := ""
	if a := d.AdminAddr(); a != nil {
		adminStr = a.String()
	}
	fmt.Printf("READY ports=%d algo=%s seed=%d ingress=%s admin=%s\n",
		*n, *algo, *seed, strings.Join(inAddrs, ","), adminStr)
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var timer <-chan time.Time
	if *duration > 0 {
		timer = time.After(*duration)
	}
	select {
	case <-sig:
	case <-timer:
	}
	if err := d.Shutdown(); err != nil {
		return err
	}
	m := d.FinalMetrics()
	fmt.Printf("DONE slot=%d admitted=%d delivered=%d completed=%d drops=%d\n",
		m.Slot, m.Daemon.Admitted, m.Daemon.Delivered, m.Daemon.Completed,
		m.Daemon.RingDrops+m.Daemon.EgressDrops)
	return nil
}
