// Command voqsim runs a single switch simulation and prints the
// paper's statistics for it.
//
// Usage:
//
//	voqsim [flags]
//
//	-algo fifoms        scheduler: fifoms, tatra, islip, oqfifo, pim,
//	                    wba, fifoms-nosplit, fifoms-rK (K = round cap)
//	-n 16               switch size
//	-topology SPEC      run a multi-stage fabric instead of a single
//	                    switch: every node is an instance of -algo and
//	                    packets travel end to end through multicast
//	                    trees over bounded inter-stage links. Specs:
//	                    fattree:k=K (K even) and clos:n=N,m=M,r=R.
//	                    -n defaults to the fabric's external port count
//	-traffic bernoulli  bernoulli | uniform | burst | mixed
//	-load 0.8           target effective load (solves the free parameter)
//	-b 0.2              per-output probability (bernoulli, burst)
//	-maxfanout 8        fanout bound (uniform, mixed)
//	-eon 16             mean burst length (burst)
//	-mcfrac 0.5         multicast fraction (mixed)
//	-slots 200000       simulated slots
//	-seed 1             run seed
//	-parallel W         step fabric nodes on W worker goroutines
//	                    (requires -topology). The parallel engine is
//	                    byte-identical to the sequential one, so every
//	                    other flag — -check, -checkpoint, -resume,
//	                    -trace — composes with it unchanged.
//	-fast               relaxed-identity fast mode: O(1) alias/Floyd/
//	                    geometric traffic sampling and batched statistics
//	                    (DESIGN.md §12); statistically equivalent to the
//	                    default, but not bit-comparable. Incompatible with
//	                    -check, -checkpoint and -resume.
//	-checkpoint FILE    atomically save a resume snapshot to FILE during the run
//	-checkpoint-every K snapshot cadence in slots (default slots/10 with -checkpoint)
//	-resume FILE        resume a run from a snapshot written by -checkpoint
//	-json               print the full report as JSON
//	-series FILE        write a per-slot backlog time series CSV
//	-trace FILE         write a slot-level event trace (JSONL) of the run
//	-metrics-every K    print a metrics snapshot to stderr every K slots
//	-check              re-run under the invariant checker (DESIGN.md §9)
//	-cpuprofile FILE    write a CPU profile of the run (go tool pprof)
//	-memprofile FILE    write a heap profile at exit
//
// -trace and -metrics-every re-run the identical simulation with the
// observability layer attached (the instrumentation draws no
// randomness, so the observed run is bit-identical); feed the JSONL
// trace to voqtrace timeline / voqtrace explain. Tracing and metrics
// are supported for the core VOQ schedulers (fifoms, islip, pim, 2drr,
// lqfms and variants) plus eslip and wba.
//
// A resumed run is bit-identical to one that was never interrupted:
// same flags + the snapshot file reproduce the original report exactly
// (the snapshot's identity header rejects mismatched flags).
//
// Example — the paper's Figure 4 operating point at load 0.8:
//
//	voqsim -algo fifoms -traffic bernoulli -b 0.2 -load 0.8
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"voqsim"
	"voqsim/internal/check"
	"voqsim/internal/experiment"
	"voqsim/internal/fabric"
	"voqsim/internal/obs"
	"voqsim/internal/report"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

func main() {
	var (
		algo      = flag.String("algo", "fifoms", "scheduling algorithm")
		n         = flag.Int("n", 16, "switch size N")
		topology  = flag.String("topology", "", "multi-stage fabric spec: fattree:k=K | clos:n=N,m=M,r=R (empty: single switch)")
		trafficK  = flag.String("traffic", "bernoulli", "traffic family: bernoulli|uniform|burst|mixed")
		load      = flag.Float64("load", 0.8, "target effective load per output")
		b         = flag.Float64("b", 0.2, "per-output destination probability (bernoulli, burst)")
		maxFanout = flag.Int("maxfanout", 8, "maximum fanout (uniform, mixed)")
		eOn       = flag.Float64("eon", 16, "mean burst length in slots (burst)")
		mcFrac    = flag.Float64("mcfrac", 0.5, "multicast fraction of arrivals (mixed)")
		slots     = flag.Int64("slots", 200_000, "simulated slots")
		seed      = flag.Uint64("seed", 1, "run seed")
		parallel  = flag.Int("parallel", 0, "fabric worker goroutines (requires -topology; results are byte-identical to sequential)")
		fast      = flag.Bool("fast", false, "relaxed-identity fast mode (no -check/-checkpoint/-resume)")
		ckptPath  = flag.String("checkpoint", "", "atomically save a resume snapshot to this file during the run")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot cadence in slots (default slots/10 with -checkpoint)")
		resumePth = flag.String("resume", "", "resume the run from this snapshot file (same flags as the original run)")
		asJSON    = flag.Bool("json", false, "print the report as JSON")
		seriesOut = flag.String("series", "", "also write a per-slot backlog time series CSV to this file")
		traceOut  = flag.String("trace", "", "also write a slot-level event trace (JSONL) to this file")
		metricsK  = flag.Int64("metrics-every", 0, "print a metrics snapshot (JSONL) to stderr every K slots")
		checkRun  = flag.Bool("check", false, "re-run under the runtime invariant checker and report its verdict")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *fast {
		switch {
		case *checkRun:
			fmt.Fprintln(os.Stderr, "voqsim: -fast is incompatible with -check: the invariant checker certifies the bit-exact path; validate fast mode statistically instead (TestFastModeEquivalence)")
			os.Exit(2)
		case *ckptPath != "" || *resumePth != "":
			fmt.Fprintln(os.Stderr, "voqsim: -fast is incompatible with -checkpoint/-resume: fast runs relax draw-order identity and cannot be snapshotted")
			os.Exit(2)
		}
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	var tr voqsim.Traffic
	switch *trafficK {
	case "bernoulli":
		tr = voqsim.BernoulliTrafficAtLoad(*load, *b)
	case "uniform":
		tr = voqsim.UniformTrafficAtLoad(*load, *maxFanout)
	case "burst":
		tr = voqsim.BurstTrafficAtLoad(*load, *b, *eOn)
	case "mixed":
		// Mixed has no at-load helper on the facade with fraction; use
		// the probability form: p = load / meanFanout.
		mean := *mcFrac*(2+float64(*maxFanout))/2 + (1 - *mcFrac)
		tr = voqsim.MixedTraffic(*load/mean, *mcFrac, *maxFanout)
	default:
		fmt.Fprintf(os.Stderr, "voqsim: unknown traffic family %q\n", *trafficK)
		os.Exit(2)
	}

	ports := *n
	if *topology != "" {
		// With a topology, -n defaults to the fabric's external port
		// count; an explicit -n must match it (the facade verifies).
		nSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				nSet = true
			}
		})
		if !nSet {
			ports = 0
		}
	}
	cfg := voqsim.Config{
		Ports:     ports,
		Scheduler: voqsim.Scheduler(*algo),
		Topology:  *topology,
		Traffic:   tr,
		Slots:     *slots,
		Seed:      *seed,
		Fast:      *fast,
		Parallel:  *parallel,
	}
	var report voqsim.Report
	if *ckptPath != "" || *resumePth != "" {
		report, err = runResumable(cfg, *ckptPath, *ckptEvery, *resumePth)
	} else {
		report, err = voqsim.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
		os.Exit(1)
	}

	if *seriesOut != "" {
		if err := writeSeries(*seriesOut, *algo, *topology, report.Ports, *slots, *seed, *fast, report.Load, *trafficK, *b, *maxFanout, *eOn, *mcFrac); err != nil {
			fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" || *metricsK > 0 {
		if err := runObserved(*traceOut, *metricsK, *algo, *topology, report.Ports, *slots, *seed, *fast, report.Load, *trafficK, *b, *maxFanout, *eOn, *mcFrac); err != nil {
			fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *checkRun {
		// In -json mode the verdict goes to stderr so stdout stays a
		// single machine-parseable document.
		verdictTo := io.Writer(os.Stdout)
		if *asJSON {
			verdictTo = os.Stderr
		}
		if err := runChecked(verdictTo, *algo, *topology, report.Ports, *slots, *seed, report.Load, *trafficK, *b, *maxFanout, *eOn, *mcFrac); err != nil {
			fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "voqsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("algorithm:            %s\n", report.Scheduler)
	fmt.Printf("traffic:              %s\n", report.Traffic)
	fmt.Printf("switch:               %dx%d\n", report.Ports, report.Ports)
	fmt.Printf("effective load:       %.4f\n", report.Load)
	fmt.Printf("slots (warmup):       %d (%d)\n", report.Slots, report.WarmupSlots)
	if report.Unstable {
		fmt.Printf("stability:            UNSTABLE at slot %d — offered load not sustainable\n", report.UnstableAt)
	} else {
		fmt.Printf("stability:            stable\n")
	}
	fmt.Printf("avg input delay:      %.3f slots\n", report.AvgInputDelay)
	fmt.Printf("avg output delay:     %.3f slots\n", report.AvgOutputDelay)
	fmt.Printf("input delay p99:      <= %d slots\n", report.InputDelayP99)
	fmt.Printf("avg queue size:       %.3f cells/port\n", report.AvgQueueSize)
	fmt.Printf("max queue size:       %d cells\n", report.MaxQueueSize)
	if report.MeanRounds > 0 {
		fmt.Printf("mean rounds/slot:     %.3f\n", report.MeanRounds)
	}
	fmt.Printf("throughput:           %.4f copies/output/slot\n", report.Throughput)
	fmt.Printf("completed packets:    %d\n", report.CompletedPackets)
	fmt.Printf("delivered copies:     %d\n", report.DeliveredCopies)
	if f := report.Fabric; f != nil {
		fmt.Printf("topology:             %s (%d switches, %d links)\n", f.Topology, f.Nodes, f.Links)
		fmt.Printf("fabric admitted:      %d packets, %d copies\n", f.AdmittedPackets, f.AdmittedCopies)
		fmt.Printf("fabric delivered:     %d copies\n", f.DeliveredCopies)
		fmt.Printf("fabric dropped:       %d copies\n", f.DroppedCopies)
		for h, c := range f.DropsByHop {
			if c > 0 {
				fmt.Printf("  dropped at hop %d:   %d\n", h, c)
			}
		}
		if f.DeliveredCopies > 0 {
			fmt.Printf("hops per copy:        mean %.3f, min %d, max %d\n", f.HopMean, f.HopMin, f.HopMax)
		}
	}
}

// runResumable is the checkpoint/resume path of the main run: it
// restores resumePath when given (continuing mid-run bit-identically),
// and keeps ckptPath updated with the latest snapshot so a killed run
// can be picked up with -resume.
func runResumable(cfg voqsim.Config, ckptPath string, every int64, resumePath string) (voqsim.Report, error) {
	var blob []byte
	if resumePath != "" {
		var err error
		blob, err = os.ReadFile(resumePath)
		if err != nil {
			return voqsim.Report{}, err
		}
	}
	var sink voqsim.CheckpointFunc
	if ckptPath != "" {
		if every <= 0 {
			every = cfg.Slots / 10
			if every <= 0 {
				every = 1
			}
		}
		sink = func(nextSlot int64, blob []byte) error {
			tmp := ckptPath + ".tmp"
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				return err
			}
			return os.Rename(tmp, ckptPath)
		}
	} else {
		every = 0
	}
	return voqsim.RunResumable(cfg, blob, every, sink)
}

// startProfiles starts CPU profiling and/or arranges a heap profile,
// returning a stop function to run when the measured work is done.
// Either path may be empty. The heap profile is preceded by a GC so it
// shows live steady-state memory, not garbage awaiting collection.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// buildSim reconstructs the exact simulation the facade ran — same
// pattern, same seed derivation, same fast-mode setting — so a second
// pass can attach recorders, the observability layer or the invariant
// checker. The rerun is exact: the engine (fast or not) is
// deterministic in the seed.
func buildSim(algo, topology string, n int, slots int64, seed uint64, fast bool, load float64, family string, b float64, maxFanout int, eOn, mcFrac float64) (switchsim.Switch, traffic.Pattern, switchsim.Config, *xrand.Rand, error) {
	var pat traffic.Pattern
	var err error
	switch family {
	case "bernoulli":
		pat, err = traffic.BernoulliAtLoad(load, b, n)
	case "uniform":
		pat, err = traffic.UniformAtLoad(load, maxFanout, n)
	case "burst":
		pat, err = traffic.BurstAtLoad(load, b, eOn, n)
	case "mixed":
		pat, err = traffic.MixedAtLoad(load, mcFrac, maxFanout, n)
	default:
		err = fmt.Errorf("rerun not supported for traffic family %q", family)
	}
	if err != nil {
		return nil, nil, switchsim.Config{}, nil, err
	}
	a, err := experiment.ByName(algo)
	if err != nil {
		return nil, nil, switchsim.Config{}, nil, err
	}
	if topology != "" {
		top, err := fabric.ParseSpec(topology)
		if err != nil {
			return nil, nil, switchsim.Config{}, nil, err
		}
		if a, err = experiment.WithTopology(a, top, fabric.Config{}); err != nil {
			return nil, nil, switchsim.Config{}, nil, err
		}
	}
	seedRoot := xrand.New(seed)
	sw := a.New(n, seedRoot.Split("switch", 0))
	return sw, pat, switchsim.Config{Slots: slots, Seed: seed, Fast: fast}, seedRoot.Split("traffic", 0), nil
}

// buildRunner is buildSim packaged as an engine Runner.
func buildRunner(algo, topology string, n int, slots int64, seed uint64, fast bool, load float64, family string, b float64, maxFanout int, eOn, mcFrac float64) (*switchsim.Runner, error) {
	sw, pat, cfg, trafficRoot, err := buildSim(algo, topology, n, slots, seed, fast, load, family, b, maxFanout, eOn, mcFrac)
	if err != nil {
		return nil, err
	}
	return switchsim.New(sw, pat, cfg, trafficRoot), nil
}

// runChecked re-runs the identical simulation wrapped in the runtime
// invariant checker (internal/check, DESIGN.md §9) and reports its
// verdict. The checker is passive — the checked rerun delivers
// bit-identically to the measured run — so a clean verdict certifies
// the run that was just reported.
func runChecked(verdictTo io.Writer, algo, topology string, n int, slots int64, seed uint64, load float64, family string, b float64, maxFanout int, eOn, mcFrac float64) error {
	sw, pat, cfg, trafficRoot, err := buildSim(algo, topology, n, slots, seed, false, load, family, b, maxFanout, eOn, mcFrac)
	if err != nil {
		return err
	}
	_, ck, err := switchsim.CheckedRun(algo, sw, pat, cfg, trafficRoot, check.Options{})
	if err != nil {
		for _, v := range ck.Violations() {
			fmt.Fprintf(os.Stderr, "voqsim: check: %s\n", v)
		}
		return fmt.Errorf("invariant check failed: %d violations (profile %s)", ck.Total(), ck.Profile())
	}
	fmt.Fprintf(verdictTo, "check:                ok (profile %s, %d invariants, %d slots)\n",
		ck.Profile(), check.NumInvariants, slots)
	return nil
}

// writeSeries re-runs the identical simulation with a series recorder
// attached and writes the per-slot backlog CSV.
func writeSeries(path, algo, topology string, n int, slots int64, seed uint64, fast bool, load float64, family string, b float64, maxFanout int, eOn, mcFrac float64) error {
	runner, err := buildRunner(algo, topology, n, slots, seed, fast, load, family, b, maxFanout, eOn, mcFrac)
	if err != nil {
		return err
	}
	stride := slots / 2000
	rec := switchsim.NewSeriesRecorder(stride)
	runner.Observe(rec)
	runner.Run(algo)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("series:               %s (%d points)\n", path, rec.Len())
	return nil
}

// runObserved re-runs the identical simulation with the observability
// layer attached (DESIGN.md §8): the event trace streams to tracePath
// as JSONL, and every metricsEvery slots a registry snapshot goes to
// stderr as one JSON line (plus a final snapshot at the end of the
// run).
func runObserved(tracePath string, metricsEvery int64, algo, topology string, n int, slots int64, seed uint64, fast bool, load float64, family string, b float64, maxFanout int, eOn, mcFrac float64) error {
	runner, err := buildRunner(algo, topology, n, slots, seed, fast, load, family, b, maxFanout, eOn, mcFrac)
	if err != nil {
		return err
	}

	o := &obs.Observer{}
	var traceFile *os.File
	var bw *bufio.Writer
	var emitted int64
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		bw = bufio.NewWriter(traceFile)
		sink := report.EventSink(bw)
		tr := obs.NewTracer(obs.DefaultTracerCap)
		tr.OnFull(func(events []obs.Event) error {
			emitted += int64(len(events))
			return sink(events)
		})
		o.Trace = tr
	}
	if metricsEvery > 0 {
		o.Metrics = obs.NewRegistry()
	}
	if !runner.Instrument(o) {
		if traceFile != nil {
			traceFile.Close()
			os.Remove(tracePath)
		}
		return fmt.Errorf("algorithm %q does not support observability (core VOQ schedulers, eslip and wba do)", algo)
	}

	var lastSnapshotSlot int64 = -1
	if metricsEvery > 0 {
		runner.OnMetricsEvery(metricsEvery, func(slot int64, metrics []obs.Metric) {
			lastSnapshotSlot = slot
			if err := report.WriteMetricsJSONL(os.Stderr, slot, metrics); err != nil {
				fmt.Fprintf(os.Stderr, "voqsim: metrics snapshot: %v\n", err)
			}
		})
	}

	res := runner.Run(algo)

	if metricsEvery > 0 && res.Slots-1 != lastSnapshotSlot {
		if err := report.WriteMetricsJSONL(os.Stderr, res.Slots-1, o.Metrics.Snapshot()); err != nil {
			return fmt.Errorf("metrics snapshot: %w", err)
		}
	}
	if o.Trace != nil {
		flushErr := o.Trace.Flush()
		if err := bw.Flush(); flushErr == nil {
			flushErr = err
		}
		if err := traceFile.Close(); flushErr == nil {
			flushErr = err
		}
		if flushErr != nil {
			return fmt.Errorf("writing trace: %w", flushErr)
		}
		fmt.Printf("trace:                %s (%d events)\n", tracePath, emitted)
	}
	return nil
}
