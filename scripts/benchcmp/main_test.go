package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBench = `goos: linux
goarch: amd64
BenchmarkSlot/n=64-8         	     100	     20000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=64-8         	     100	     19000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=128-8        	     100	     50000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIFOMSMatch/n=16/uniform-8  	 100	  5000 ns/op	 0 B/op	 0 allocs/op
PASS
`

func TestParseAggregatesMinNs(t *testing.T) {
	res, err := parseFile(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkSlot/n=64-8"]
	if r == nil {
		t.Fatal("BenchmarkSlot/n=64-8 not parsed")
	}
	if r.ns != 19000 || r.runs != 2 || r.allocs != 0 {
		t.Fatalf("got min %v ns/op over %d runs (%d allocs), want 19000 over 2 (0)", r.ns, r.runs, r.allocs)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res))
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	old, err := parseFile(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	// n=64 regresses 21% (fails at 10%), n=128 improves, the match
	// kernel drifts +4% (within threshold), and a new benchmark appears.
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkSlot/n=64-8         	     100	     23000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=128-8        	     100	     40000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIFOMSMatch/n=16/uniform-8  	 100	  5200 ns/op	 0 B/op	 0 allocs/op
BenchmarkSweep/workers=8-8   	     100	     90000 ns/op	     128 B/op	       4 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	regressed := compare(os.Stdout, old, new, 10)
	if len(regressed) != 1 {
		t.Fatalf("flagged %d regressions, want 1: %v", len(regressed), regressed)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old, err := parseFile(writeTemp(t, "old.txt",
		"BenchmarkSlot/n=64-8 100 20000 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Faster, but now allocating: still a failure — the zero-alloc
	// steady state is an acceptance criterion, not a nicety.
	new, err := parseFile(writeTemp(t, "new.txt",
		"BenchmarkSlot/n=64-8 100 15000 ns/op 64 B/op 2 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	regressed := compare(os.Stdout, old, new, 10)
	if len(regressed) != 1 {
		t.Fatalf("flagged %d regressions, want 1 (alloc): %v", len(regressed), regressed)
	}
}

func TestCompareReportsGeomeanSpeedup(t *testing.T) {
	// A uniform 2x win across both common benchmarks must report a
	// 2.000x geomean; the benchmark present on one side only is
	// excluded from the aggregate.
	old, err := parseFile(writeTemp(t, "old.txt", `
BenchmarkSlot/n=64-8   100 20000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=128-8  100 50000 ns/op 0 B/op 0 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkSlot/n=64-8   100 10000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=128-8  100 25000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=256-8  100 99999 ns/op 0 B/op 0 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if regressed := compare(&sb, old, new, 10); len(regressed) != 0 {
		t.Fatalf("unexpected regressions: %v", regressed)
	}
	report := sb.String()
	if !strings.Contains(report, "geomean speedup (2 benchmarks)") {
		t.Fatalf("no geomean row in:\n%s", report)
	}
	if !strings.Contains(report, "2.000x (+100.0%)") {
		t.Fatalf("wrong geomean value in:\n%s", report)
	}
}

func TestSplitWorkers(t *testing.T) {
	for _, c := range []struct {
		name, group string
		workers     int
		ok          bool
	}{
		{"BenchmarkFabricSlotParallel/workers=4-8", "BenchmarkFabricSlotParallel-8", 4, true},
		{"BenchmarkX/topo=clos/workers=2-1", "BenchmarkX/topo=clos-1", 2, true},
		{"BenchmarkSlot/n=64-8", "", 0, false},
		{"BenchmarkX/workers=zero-8", "", 0, false},
	} {
		group, workers, ok := splitWorkers(c.name)
		if group != c.group || workers != c.workers || ok != c.ok {
			t.Errorf("splitWorkers(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.name, group, workers, ok, c.group, c.workers, c.ok)
		}
	}
}

func TestScalingReport(t *testing.T) {
	// workers=2 at exactly half the time of workers=1: 2.00x speedup,
	// 100% efficiency; workers=4 at 2500 ns is 4.00x, 100%.
	res, err := parseFile(writeTemp(t, "bench.txt", `
BenchmarkFabricSlotParallel/workers=1-8 100 10000 ns/op
BenchmarkFabricSlotParallel/workers=2-8 100  5000 ns/op
BenchmarkFabricSlotParallel/workers=4-8 100  2500 ns/op
BenchmarkSlot/n=64-8                    100 20000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if groups := scaling(&sb, res); groups != 1 {
		t.Fatalf("found %d groups, want 1", groups)
	}
	report := sb.String()
	for _, want := range []string{"2.00x", "4.00x", "100%"} {
		if !strings.Contains(report, want) {
			t.Fatalf("scaling report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "BenchmarkSlot/n=64") {
		t.Fatalf("non-parallel benchmark leaked into the scaling report:\n%s", report)
	}

	// Without a workers=1 baseline the rows print without ratios.
	res, err = parseFile(writeTemp(t, "nobase.txt",
		"BenchmarkFabricSlotParallel/workers=2-8 100 5000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	scaling(&sb, res)
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("baseline-less group should print '-' ratios:\n%s", sb.String())
	}
}

func TestCompareGeomeanIsSymmetric(t *testing.T) {
	// One benchmark 2x faster, one 2x slower: the ratio geomean is
	// exactly 1.000x — an arithmetic mean of deltas would report a
	// spurious +25%.
	old, err := parseFile(writeTemp(t, "old.txt", `
BenchmarkA-8 100 1000 ns/op
BenchmarkB-8 100 4000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkA-8 100 500 ns/op
BenchmarkB-8 100 8000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	compare(&sb, old, new, 1000) // threshold high: aggregate only
	if !strings.Contains(sb.String(), "1.000x (+0.0%)") {
		t.Fatalf("geomean not symmetric in:\n%s", sb.String())
	}
}
