package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBench = `goos: linux
goarch: amd64
BenchmarkSlot/n=64-8         	     100	     20000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=64-8         	     100	     19000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=128-8        	     100	     50000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIFOMSMatch/n=16/uniform-8  	 100	  5000 ns/op	 0 B/op	 0 allocs/op
PASS
`

func TestParseAggregatesMinNs(t *testing.T) {
	res, err := parseFile(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkSlot/n=64-8"]
	if r == nil {
		t.Fatal("BenchmarkSlot/n=64-8 not parsed")
	}
	if r.ns != 19000 || r.runs != 2 || r.allocs != 0 {
		t.Fatalf("got min %v ns/op over %d runs (%d allocs), want 19000 over 2 (0)", r.ns, r.runs, r.allocs)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res))
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	old, err := parseFile(writeTemp(t, "old.txt", oldBench))
	if err != nil {
		t.Fatal(err)
	}
	// n=64 regresses 21% (fails at 10%), n=128 improves, the match
	// kernel drifts +4% (within threshold), and a new benchmark appears.
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkSlot/n=64-8         	     100	     23000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlot/n=128-8        	     100	     40000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIFOMSMatch/n=16/uniform-8  	 100	  5200 ns/op	 0 B/op	 0 allocs/op
BenchmarkSweep/workers=8-8   	     100	     90000 ns/op	     128 B/op	       4 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	regressed := compare(os.Stdout, old, new, 10)
	if len(regressed) != 1 {
		t.Fatalf("flagged %d regressions, want 1: %v", len(regressed), regressed)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old, err := parseFile(writeTemp(t, "old.txt",
		"BenchmarkSlot/n=64-8 100 20000 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Faster, but now allocating: still a failure — the zero-alloc
	// steady state is an acceptance criterion, not a nicety.
	new, err := parseFile(writeTemp(t, "new.txt",
		"BenchmarkSlot/n=64-8 100 15000 ns/op 64 B/op 2 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	regressed := compare(os.Stdout, old, new, 10)
	if len(regressed) != 1 {
		t.Fatalf("flagged %d regressions, want 1 (alloc): %v", len(regressed), regressed)
	}
}

func TestCompareReportsGeomeanSpeedup(t *testing.T) {
	// A uniform 2x win across both common benchmarks must report a
	// 2.000x geomean; the benchmark present on one side only is
	// excluded from the aggregate.
	old, err := parseFile(writeTemp(t, "old.txt", `
BenchmarkSlot/n=64-8   100 20000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=128-8  100 50000 ns/op 0 B/op 0 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkSlot/n=64-8   100 10000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=128-8  100 25000 ns/op 0 B/op 0 allocs/op
BenchmarkSlot/n=256-8  100 99999 ns/op 0 B/op 0 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if regressed := compare(&sb, old, new, 10); len(regressed) != 0 {
		t.Fatalf("unexpected regressions: %v", regressed)
	}
	report := sb.String()
	if !strings.Contains(report, "geomean speedup (2 benchmarks)") {
		t.Fatalf("no geomean row in:\n%s", report)
	}
	if !strings.Contains(report, "2.000x (+100.0%)") {
		t.Fatalf("wrong geomean value in:\n%s", report)
	}
}

func TestCompareGeomeanIsSymmetric(t *testing.T) {
	// One benchmark 2x faster, one 2x slower: the ratio geomean is
	// exactly 1.000x — an arithmetic mean of deltas would report a
	// spurious +25%.
	old, err := parseFile(writeTemp(t, "old.txt", `
BenchmarkA-8 100 1000 ns/op
BenchmarkB-8 100 4000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseFile(writeTemp(t, "new.txt", `
BenchmarkA-8 100 500 ns/op
BenchmarkB-8 100 8000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	compare(&sb, old, new, 1000) // threshold high: aggregate only
	if !strings.Contains(sb.String(), "1.000x (+0.0%)") {
		t.Fatalf("geomean not symmetric in:\n%s", sb.String())
	}
}
