// Command benchcmp compares two `go test -bench` output files and
// fails loudly on performance regressions. It is a dependency-free
// stand-in for benchstat, sized for the CI benchmark-smoke job: parse
// both files, aggregate repeated runs of each benchmark, and exit
// non-zero if any benchmark got slower (ns/op) by more than the
// threshold or started allocating where it previously did not.
//
// Usage:
//
//	benchcmp [-threshold 10] old.txt new.txt
//	benchcmp -scaling bench.txt
//
// Aggregation takes the minimum ns/op across -count repetitions: on a
// noisy shared runner the minimum is the least-contaminated estimate
// of the code's true cost, and comparing minima keeps scheduler noise
// from failing (or masking) a comparison. allocs/op takes the maximum,
// since a single allocating run is already a correctness signal.
//
// -scaling reads a single file and reports per-core scaling instead of
// a regression diff: benchmarks whose name carries a /workers=K
// sub-benchmark (e.g. BenchmarkFabricSlotParallel/workers=4) are
// grouped, and each worker count is compared against the group's
// workers=1 row — speedup (t1/tK) and parallel efficiency
// (speedup/K). Groups without a workers=1 baseline are listed without
// ratios. Informational only: scaling depends on the host's core
// count, so the mode never fails a build over a ratio.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	ns     float64 // min ns/op seen
	allocs int64   // max allocs/op seen
	bytes  int64   // max B/op seen
	runs   int
}

// parseFile reads one `go test -bench` output stream, returning the
// aggregated result per benchmark name (with the -GOMAXPROCS suffix
// kept, so n=64-8 and n=64-1 never silently compare against each
// other).
func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]*result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		r := out[name]
		if r == nil {
			r = &result{ns: -1}
			out[name] = r
		}
		// Walk "<value> <unit>" pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q on line %q", path, fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				if r.ns < 0 || v < r.ns {
					r.ns = v
				}
			case "allocs/op":
				if a := int64(v); a > r.allocs {
					r.allocs = a
				}
			case "B/op":
				if b := int64(v); b > r.bytes {
					r.bytes = b
				}
			}
		}
		r.runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compare writes a delta table to w — ending with a geomean speedup
// row over the common benchmarks — and returns the names of
// benchmarks that regressed beyond thresholdPct (time) or regressed
// from zero to non-zero allocations.
func compare(w io.Writer, old, new map[string]*result, thresholdPct float64) []string {
	names := make([]string, 0, len(old))
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var regressed []string
	var logSum float64
	var logN int
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := old[name], new[name]
		delta := 0.0
		if o.ns > 0 {
			delta = (n.ns - o.ns) / o.ns * 100
		}
		if o.ns > 0 && n.ns > 0 {
			logSum += math.Log(o.ns / n.ns)
			logN++
		}
		mark := ""
		if delta > thresholdPct {
			mark = "  << REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, threshold %+.1f%%)",
				name, o.ns, n.ns, delta, thresholdPct))
		}
		if o.allocs == 0 && n.allocs > 0 {
			mark = "  << ALLOC REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s: 0 -> %d allocs/op", name, n.allocs))
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%%s\n", name, o.ns, n.ns, delta, mark)
	}
	if logN > 0 {
		// The geomean of per-benchmark old/new time ratios: >1 means the
		// new side is faster overall; the symmetric aggregate benchstat
		// reports, immune to one benchmark dominating an arithmetic mean.
		speedup := math.Exp(logSum / float64(logN))
		fmt.Fprintf(w, "%-60s %38.3fx (%+.1f%%)\n",
			fmt.Sprintf("geomean speedup (%d benchmarks)", logN), speedup, (speedup-1)*100)
	}

	// Benchmarks present on only one side are reported but never fatal:
	// renames and additions are routine.
	for name := range old {
		if _, ok := new[name]; !ok {
			fmt.Fprintf(w, "%-60s only in old file\n", name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			fmt.Fprintf(w, "%-60s only in new file\n", name)
		}
	}
	return regressed
}

// splitWorkers recognises a /workers=K sub-benchmark component in a
// benchmark name, returning the group key (the name with that
// component removed, -GOMAXPROCS suffix preserved) and K.
func splitWorkers(name string) (group string, workers int, ok bool) {
	segs := strings.Split(name, "/")
	for i, s := range segs {
		v, found := strings.CutPrefix(s, "workers=")
		if !found {
			continue
		}
		suffix := ""
		if j := strings.IndexByte(v, '-'); j >= 0 {
			suffix, v = v[j:], v[:j]
		}
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			continue
		}
		rest := append(append([]string{}, segs[:i]...), segs[i+1:]...)
		return strings.Join(rest, "/") + suffix, k, true
	}
	return "", 0, false
}

// scaling writes the per-core scaling table for every /workers=K group
// in res and returns the number of groups found.
func scaling(w io.Writer, res map[string]*result) int {
	type row struct {
		workers int
		ns      float64
	}
	groups := make(map[string][]row)
	for name, r := range res {
		if g, k, ok := splitWorkers(name); ok {
			groups[g] = append(groups[g], row{k, r.ns})
		}
	}
	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-52s %8s %14s %9s %11s\n", "benchmark", "workers", "ns/op", "speedup", "efficiency")
	for _, g := range names {
		rows := groups[g]
		sort.Slice(rows, func(i, j int) bool { return rows[i].workers < rows[j].workers })
		base := 0.0
		for _, r := range rows {
			if r.workers == 1 {
				base = r.ns
			}
		}
		for _, r := range rows {
			if base > 0 && r.ns > 0 {
				speedup := base / r.ns
				fmt.Fprintf(w, "%-52s %8d %14.0f %8.2fx %10.0f%%\n",
					g, r.workers, r.ns, speedup, speedup/float64(r.workers)*100)
			} else {
				fmt.Fprintf(w, "%-52s %8d %14.0f %9s %11s\n", g, r.workers, r.ns, "-", "-")
			}
		}
	}
	return len(groups)
}

func main() {
	threshold := flag.Float64("threshold", 10, "fail when ns/op grows by more than this percentage")
	scalingMode := flag.Bool("scaling", false, "read one file and report /workers=K per-core scaling instead of a diff")
	flag.Parse()
	if *scalingMode {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchcmp -scaling bench.txt")
			os.Exit(2)
		}
		res, err := parseFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		if scaling(os.Stdout, res) == 0 {
			fmt.Fprintln(os.Stderr, "benchcmp: no /workers=K benchmarks found; was -bench run against the parallel benchmarks?")
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	new, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if len(old) == 0 || len(new) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark results parsed; was -bench run with -run '^$'?")
		os.Exit(2)
	}
	regressed := compare(os.Stdout, old, new, *threshold)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcmp: %d regression(s):\n", len(regressed))
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}
