package voqsim

// Multi-process tests of the distributed sweep CLI: a real `voqsweep
// -serve` coordinator process plus real `-worker` processes over
// loopback TCP must render the exact bytes of the single-process
// goldens — for any fleet size, with a resume directory, and with a
// worker SIGKILLed mid-sweep.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sweepServer is one `voqsweep -serve` process with its streams split:
// stdout is the golden surface, stderr carries the READY line and
// fleet diagnostics.
type sweepServer struct {
	cmd    *exec.Cmd
	stdout bytes.Buffer
	stderr *lineTee
	addr   string
	done   chan error
}

// lineTee buffers a stream while letting tests wait for marker lines.
type lineTee struct {
	buf   bytes.Buffer
	lines chan string
}

func (lt *lineTee) run(r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		lt.buf.WriteString(line + "\n")
		select {
		case lt.lines <- line:
		default: // no listener; keep only the buffer
		}
	}
	close(lt.lines)
}

// waitLine blocks until a stderr line containing marker arrives.
func (lt *lineTee) waitLine(t *testing.T, marker string, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-lt.lines:
			if !ok {
				t.Fatalf("stderr closed before %q; so far:\n%s", marker, lt.buf.String())
			}
			if strings.Contains(line, marker) {
				return line
			}
		case <-deadline:
			t.Fatalf("no %q line within %v; so far:\n%s", marker, timeout, lt.buf.String())
		}
	}
}

// startSweepServer launches `voqsweep -serve 127.0.0.1:0 args...` and
// waits for its READY line.
func startSweepServer(t *testing.T, args ...string) *sweepServer {
	t.Helper()
	s := &sweepServer{stderr: &lineTee{lines: make(chan string, 64)}, done: make(chan error, 1)}
	full := append([]string{"-serve", "127.0.0.1:0"}, args...)
	s.cmd = exec.Command(filepath.Join(buildTools(t), "voqsweep"), full...)
	s.cmd.Stdout = &s.stdout
	ep, err := s.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go s.stderr.run(ep)
	go func() { s.done <- s.cmd.Wait() }()
	t.Cleanup(func() { s.cmd.Process.Kill() })

	ready := s.stderr.waitLine(t, "DSWEEP READY", 30*time.Second)
	fields := strings.Fields(ready)
	s.addr = fields[len(fields)-1]
	return s
}

// wait blocks until the coordinator exits and returns its stdout.
func (s *sweepServer) wait(t *testing.T) string {
	t.Helper()
	select {
	case err := <-s.done:
		if err != nil {
			t.Fatalf("coordinator exit: %v\nstderr:\n%s", err, s.stderr.buf.String())
		}
	case <-time.After(120 * time.Second):
		s.cmd.Process.Kill()
		t.Fatalf("coordinator did not exit\nstderr:\n%s", s.stderr.buf.String())
	}
	return s.stdout.String()
}

func startSweepWorker(t *testing.T, addr, name string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), "voqsweep"),
		"-worker", addr, "-worker-name", name)
	cmd.Stdout = os.Stderr // workers print nothing on success; surface surprises
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	return cmd
}

// TestCLIDSweepGoldenFleets pins the distributed path to the exact
// single-process goldens: coordinator plus 1, 2 and 4 workers must
// render voqsweep_4x4.golden and its CSV byte for byte.
func TestCLIDSweepGoldenFleets(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			csvPath := filepath.Join(t.TempDir(), "sweep.csv")
			srv := startSweepServer(t, goldenSweepArgs(csvPath)...)
			var procs []*exec.Cmd
			for i := 0; i < workers; i++ {
				procs = append(procs, startSweepWorker(t, srv.addr, fmt.Sprintf("w%d", i)))
			}
			out := srv.wait(t)
			for i, p := range procs {
				if err := p.Wait(); err != nil {
					t.Errorf("worker %d exit: %v", i, err)
				}
			}
			checkGolden(t, "voqsweep_4x4.golden", out)
			csv, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))
		})
	}
}

// TestCLIDSweepResumeDirGolden runs the distributed sweep against a
// resume directory twice: the second serve preloads every finished
// point from disk, completes without simulating, and still renders the
// goldens.
func TestCLIDSweepResumeDirGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "ckpt")

	csvPath := filepath.Join(tmp, "sweep1.csv")
	srv := startSweepServer(t, goldenSweepArgs(csvPath, "-resume-dir", dir)...)
	w := startSweepWorker(t, srv.addr, "w0")
	out := srv.wait(t)
	if err := w.Wait(); err != nil {
		t.Fatalf("worker exit: %v", err)
	}
	checkGolden(t, "voqsweep_4x4.golden", out)

	// Leg 2: same directory, zero workers. Every point preloads, so
	// the coordinator finishes without any fleet at all.
	csvPath = filepath.Join(tmp, "sweep2.csv")
	srv = startSweepServer(t, goldenSweepArgs(csvPath, "-resume-dir", dir)...)
	out = srv.wait(t)
	checkGolden(t, "voqsweep_4x4.golden", out)
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))
}

// TestCLIDSweepWorkerKill is the cross-process crash drill: SIGKILL a
// worker mid-sweep, let a replacement finish, and require the merged
// table to match a local run of the same flags byte for byte, with the
// kill visible in the coordinator's fleet counters.
func TestCLIDSweepWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	// Long points (~1s each) so the kill reliably lands mid-point.
	args := []string{
		"-n", "4", "-seed", "7", "-slots", "1500000",
		"-loads", "0.3,0.6", "-algos", "fifoms",
		"-traffic", "bernoulli", "-b", "0.3",
		"-metrics", "in_delay,avg_queue,throughput",
	}
	want := runTool(t, "voqsweep", "", args...)

	srv := startSweepServer(t, append([]string{"-progress"}, args...)...)
	victim := startSweepWorker(t, srv.addr, "victim")
	// Wait until the victim holds a lease, then kill it without
	// ceremony while it simulates.
	srv.stderr.waitLine(t, "lease 1:", 30*time.Second)
	time.Sleep(200 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	srv.stderr.waitLine(t, "re-leasing", 30*time.Second)

	healer := startSweepWorker(t, srv.addr, "healer")
	out := srv.wait(t)
	if err := healer.Wait(); err != nil {
		t.Fatalf("replacement worker exit: %v", err)
	}
	if out != want {
		t.Fatalf("distributed table after SIGKILL differs from local run\ngot:\n%s\nwant:\n%s", out, want)
	}
	logs := srv.stderr.buf.String()
	if !strings.Contains(logs, "dsweep_workers_lost_total=1") {
		t.Errorf("fleet summary does not count the killed worker:\n%s", logs)
	}
	if !strings.Contains(logs, "dsweep_leases_reclaimed_total=") ||
		strings.Contains(logs, "dsweep_leases_reclaimed_total=0") {
		t.Errorf("fleet summary does not count the re-lease:\n%s", logs)
	}
}
