package voqsim

// End-to-end tests of the command-line tools: each binary is built
// once into a temp dir and driven through its primary flows. These
// are the flows EXPERIMENTS.md tells readers to run, so they must not
// rot.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test process.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "voqsim-bins")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIVoqsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "voqsim", "", "-algo", "fifoms", "-load", "0.6", "-slots", "5000")
	for _, want := range []string{"algorithm:", "fifoms", "stability:", "stable", "throughput:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("voqsim output missing %q:\n%s", want, out)
		}
	}
	// JSON mode emits a decodable report.
	out = runTool(t, "voqsim", "", "-algo", "oqfifo", "-load", "0.5", "-slots", "2000", "-json")
	if !strings.Contains(out, "\"Scheduler\": \"oqfifo\"") {
		t.Fatalf("voqsim -json output:\n%s", out)
	}
}

func TestCLIVoqsimSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	runTool(t, "voqsim", "", "-algo", "fifoms", "-load", "0.5", "-slots", "4000", "-series", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,backlog_cells") {
		t.Fatalf("series file header:\n%.80s", data)
	}
}

func TestCLIVoqsimCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	snap := filepath.Join(t.TempDir(), "run.snap")
	args := []string{"-algo", "fifoms", "-load", "0.5", "-slots", "4000", "-seed", "9"}

	// A checkpointed run leaves its latest snapshot behind and reports
	// exactly what an unobserved run does.
	want := runTool(t, "voqsim", "", args...)
	got := runTool(t, "voqsim", "", append(args, "-checkpoint", snap, "-checkpoint-every", "1000")...)
	if got != want {
		t.Fatalf("checkpointing changed the report:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// Resuming the snapshot (taken at slot 3000 of 4000) replays only
	// the tail yet reproduces the full-run report byte for byte.
	got = runTool(t, "voqsim", "", append(args, "-resume", snap)...)
	if got != want {
		t.Fatalf("resumed report differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCLIVoqsweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	out := runTool(t, "voqsweep",
		"", "-loads", "0.3,0.6", "-slots", "3000", "-algos", "fifoms,oqfifo",
		"-metrics", "in_delay", "-csv", csvPath)
	if !strings.Contains(out, "fifoms") || !strings.Contains(out, "0.6") {
		t.Fatalf("voqsweep output:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "sweep,algorithm,load,metric,value") {
		t.Fatalf("CSV header:\n%.80s", data)
	}
}

func TestCLIVoqsweepScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	scenario := filepath.Join(t.TempDir(), "s.json")
	err := os.WriteFile(scenario, []byte(`{
		"name": "cli-test", "n": 8, "slots": 2000, "seed": 3,
		"traffic": {"family": "uniform", "maxFanout": 4},
		"algorithms": ["fifoms"], "loads": [0.5]
	}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "voqsweep", "", "-config", scenario, "-metrics", "throughput")
	if !strings.Contains(out, "cli-test") || !strings.Contains(out, "fifoms") {
		t.Fatalf("scenario output:\n%s", out)
	}
}

func TestCLIVoqfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	outDir := t.TempDir()
	out := runTool(t, "voqfigs", "", "-figs", "fig5", "-slots", "3000", "-plots", "-out", outDir)
	for _, want := range []string{"fig5", "convergence", "shape check"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Fatalf("voqfigs output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{"fig5.csv", "fig5.json"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("export %s missing: %v", f, err)
		}
	}
}

func TestCLIVoqtracePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	trace := runTool(t, "voqtrace", "", "record", "-slots", "2000", "-load", "0.5", "-n", "8")
	info := runTool(t, "voqtrace", trace, "info")
	if !strings.Contains(info, "ports:        8") {
		t.Fatalf("voqtrace info:\n%s", info)
	}
	run := runTool(t, "voqtrace", trace, "run", "-algo", "fifoms")
	if !strings.Contains(run, "fifoms") || !strings.Contains(run, "stable") {
		t.Fatalf("voqtrace run:\n%s", run)
	}
}

func TestCLIVoqreportSkipExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "voqreport", "", "-slots", "2000", "-skip-extensions")
	for _, want := range []string{"# EXPERIMENTS", "## fig4", "## fig8", "Verdict"} {
		if !strings.Contains(out, want) {
			t.Fatalf("voqreport output missing %q", want)
		}
	}
}

// parseReady extracts the ingress and admin addresses from a voqd
// READY line.
func parseReady(t *testing.T, line string) (ingress []string, admin string) {
	t.Helper()
	for _, f := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(f, "ingress="); ok {
			ingress = strings.Split(v, ",")
		}
		if v, ok := strings.CutPrefix(f, "admin="); ok {
			admin = v
		}
	}
	if len(ingress) == 0 || admin == "" {
		t.Fatalf("unparseable READY line: %q", line)
	}
	return ingress, admin
}

// TestCLIVoqdSmoke is the daemon smoke flow the CI job runs: start
// voqd on ephemeral loopback ports, wait for READY, hit /healthz,
// push an echo load through voqload, and shut down cleanly on SIGTERM.
func TestCLIVoqdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	record := filepath.Join(t.TempDir(), "arrivals.jsonl")
	cmd := exec.Command(filepath.Join(buildTools(t), "voqd"),
		"-n", "4", "-seed", "7", "-slot-period", "50us", "-record", record)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("voqd exited before READY")
	}
	ready := sc.Text()
	if !strings.HasPrefix(ready, "READY ") {
		t.Fatalf("first voqd line: %q", ready)
	}
	ingress, admin := parseReady(t, ready)
	if len(ingress) != 4 {
		t.Fatalf("READY lists %d ingress ports, want 4", len(ingress))
	}

	resp, err := http.Get("http://" + admin + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}

	// 1k-packet echo through the voqload binary, receiver subscribed
	// over the admin API.
	out := runTool(t, "voqload", "",
		"-targets", strings.Join(ingress, ","),
		"-admin", admin,
		"-traffic", "uniform", "-load", "0.5", "-maxfanout", "2",
		"-slots", "1000", "-slot-rate", "20000", "-seed", "7", "-drain", "3s")
	resLine := ""
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "RESULT ") {
			resLine = line
		}
	}
	if resLine == "" {
		t.Fatalf("voqload printed no RESULT line:\n%s", out)
	}
	fields := map[string]string{}
	for _, f := range strings.Fields(strings.TrimPrefix(resLine, "RESULT ")) {
		if k, v, ok := strings.Cut(f, "="); ok {
			fields[k] = v
		}
	}
	sent, _ := strconv.ParseInt(fields["sent"], 10, 64)
	recvd, _ := strconv.ParseInt(fields["recv"], 10, 64)
	completed, _ := strconv.ParseInt(fields["completed"], 10, 64)
	if sent < 500 {
		t.Fatalf("voqload sent only %d frames:\n%s", sent, out)
	}
	if completed != sent || recvd < sent {
		t.Fatalf("echo incomplete: sent=%d recv=%d completed=%d\n%s", sent, recvd, completed, out)
	}

	// Clean shutdown on SIGTERM: DONE line, zero exit, transcript file.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var done string
	for sc.Scan() {
		done = sc.Text()
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("voqd exit: %v", err)
	}
	if !strings.HasPrefix(done, "DONE ") || !strings.Contains(done, "admitted="+fields["sent"]) {
		t.Fatalf("voqd DONE line %q does not account for %s sent frames", done, fields["sent"])
	}
	if fi, err := os.Stat(record); err != nil || fi.Size() == 0 {
		t.Fatalf("no arrival transcript at %s: %v", record, err)
	}

	// The recorded transcript replays clean under the checker with the
	// daemon's algo and seed — the operator-facing validation loop.
	blob, err := os.ReadFile(record)
	if err != nil {
		t.Fatal(err)
	}
	run := runTool(t, "voqtrace", string(blob), "run", "-algo", "fifoms", "-seed", "7", "-check")
	if !strings.Contains(run, "check: all invariants held") {
		t.Fatalf("voqtrace run -check on the daemon transcript:\n%s", run)
	}
}

// TestCLIVoqdCrashRecovery kills voqd hard (SIGKILL) and restarts it
// from its checkpoint: the resumed daemon must pick the slot clock up
// from the snapshot and deliver the backlog that was acknowledged
// (admitted) before the crash.
func TestCLIVoqdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	ckpt := filepath.Join(t.TempDir(), "voqd.snap")
	start := func() (*exec.Cmd, []string, string) {
		cmd := exec.Command(filepath.Join(buildTools(t), "voqd"),
			"-n", "4", "-seed", "9", "-slot-period", "200us",
			"-checkpoint", ckpt, "-checkpoint-every", "200", "-resume")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatal("voqd exited before READY")
		}
		ingress, admin := parseReady(t, sc.Text())
		return cmd, ingress, admin
	}

	cmd, ingress, admin := start()
	defer func() { cmd.Process.Kill() }()

	// Offer a multicast load, then wait until at least one checkpoint
	// cadence has passed with traffic admitted.
	runTool(t, "voqload", "",
		"-targets", strings.Join(ingress, ","),
		"-traffic", "uniform", "-load", "0.8", "-maxfanout", "4",
		"-slots", "400", "-slot-rate", "5000", "-seed", "9", "-drain", "0s")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no clean shutdown
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, _, admin2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	_ = admin

	// The resumed daemon reports a non-zero slot (picked up from the
	// snapshot, not from zero) and still serves its admin plane.
	resp, err := http.Get("http://" + admin2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m struct {
		Slot   int64 `json:"slot"`
		Daemon struct {
			Admitted int64 `json:"admitted_packets_total"`
		} `json:"daemon"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v\n%s", err, body)
	}
	if m.Slot < 200 {
		t.Fatalf("resumed daemon reports slot %d; the checkpoint was at >= 200", m.Slot)
	}
	if m.Daemon.Admitted == 0 {
		t.Fatal("resumed daemon lost the admitted-packet accounting")
	}
}
