package voqsim

// End-to-end tests of the command-line tools: each binary is built
// once into a temp dir and driven through its primary flows. These
// are the flows EXPERIMENTS.md tells readers to run, so they must not
// rot.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test process.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "voqsim-bins")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIVoqsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "voqsim", "", "-algo", "fifoms", "-load", "0.6", "-slots", "5000")
	for _, want := range []string{"algorithm:", "fifoms", "stability:", "stable", "throughput:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("voqsim output missing %q:\n%s", want, out)
		}
	}
	// JSON mode emits a decodable report.
	out = runTool(t, "voqsim", "", "-algo", "oqfifo", "-load", "0.5", "-slots", "2000", "-json")
	if !strings.Contains(out, "\"Scheduler\": \"oqfifo\"") {
		t.Fatalf("voqsim -json output:\n%s", out)
	}
}

func TestCLIVoqsimSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	runTool(t, "voqsim", "", "-algo", "fifoms", "-load", "0.5", "-slots", "4000", "-series", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,backlog_cells") {
		t.Fatalf("series file header:\n%.80s", data)
	}
}

func TestCLIVoqsimCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	snap := filepath.Join(t.TempDir(), "run.snap")
	args := []string{"-algo", "fifoms", "-load", "0.5", "-slots", "4000", "-seed", "9"}

	// A checkpointed run leaves its latest snapshot behind and reports
	// exactly what an unobserved run does.
	want := runTool(t, "voqsim", "", args...)
	got := runTool(t, "voqsim", "", append(args, "-checkpoint", snap, "-checkpoint-every", "1000")...)
	if got != want {
		t.Fatalf("checkpointing changed the report:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// Resuming the snapshot (taken at slot 3000 of 4000) replays only
	// the tail yet reproduces the full-run report byte for byte.
	got = runTool(t, "voqsim", "", append(args, "-resume", snap)...)
	if got != want {
		t.Fatalf("resumed report differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCLIVoqsweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	out := runTool(t, "voqsweep",
		"", "-loads", "0.3,0.6", "-slots", "3000", "-algos", "fifoms,oqfifo",
		"-metrics", "in_delay", "-csv", csvPath)
	if !strings.Contains(out, "fifoms") || !strings.Contains(out, "0.6") {
		t.Fatalf("voqsweep output:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "sweep,algorithm,load,metric,value") {
		t.Fatalf("CSV header:\n%.80s", data)
	}
}

func TestCLIVoqsweepScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	scenario := filepath.Join(t.TempDir(), "s.json")
	err := os.WriteFile(scenario, []byte(`{
		"name": "cli-test", "n": 8, "slots": 2000, "seed": 3,
		"traffic": {"family": "uniform", "maxFanout": 4},
		"algorithms": ["fifoms"], "loads": [0.5]
	}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "voqsweep", "", "-config", scenario, "-metrics", "throughput")
	if !strings.Contains(out, "cli-test") || !strings.Contains(out, "fifoms") {
		t.Fatalf("scenario output:\n%s", out)
	}
}

func TestCLIVoqfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	outDir := t.TempDir()
	out := runTool(t, "voqfigs", "", "-figs", "fig5", "-slots", "3000", "-plots", "-out", outDir)
	for _, want := range []string{"fig5", "convergence", "shape check"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Fatalf("voqfigs output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{"fig5.csv", "fig5.json"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("export %s missing: %v", f, err)
		}
	}
}

func TestCLIVoqtracePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	trace := runTool(t, "voqtrace", "", "record", "-slots", "2000", "-load", "0.5", "-n", "8")
	info := runTool(t, "voqtrace", trace, "info")
	if !strings.Contains(info, "ports:        8") {
		t.Fatalf("voqtrace info:\n%s", info)
	}
	run := runTool(t, "voqtrace", trace, "run", "-algo", "fifoms")
	if !strings.Contains(run, "fifoms") || !strings.Contains(run, "stable") {
		t.Fatalf("voqtrace run:\n%s", run)
	}
}

func TestCLIVoqreportSkipExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	out := runTool(t, "voqreport", "", "-slots", "2000", "-skip-extensions")
	for _, want := range []string{"# EXPERIMENTS", "## fig4", "## fig8", "Verdict"} {
		if !strings.Contains(out, want) {
			t.Fatalf("voqreport output missing %q", want)
		}
	}
}
