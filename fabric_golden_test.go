package voqsim

// Fabric delivery-trace goldens: the bit-identity contract of the
// multi-stage pipeline, pinned through the public facade. Each grid
// cell runs a 4-ary fat-tree behind Config.Topology and hashes the
// complete fabric delivery stream — packet ID, external input, leaf,
// slot and Last flag per copy — plus the headline and fabric-level
// statistics. Any change to link timing, split order, routing or the
// fabric's counters shows up as a hash mismatch.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test -run TestFabricDeliveryGolden -update-golden .

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"voqsim/internal/cell"
)

var fabricGoldenAlgos = []Scheduler{FIFOMS, PIM, ESLIP}

var fabricGoldenSeeds = []uint64{1, 42}

// fabricDeliveryHash runs one fat-tree grid cell through the facade
// and returns the FNV-64a hash of its delivery stream with the
// delivered-copy count.
func fabricDeliveryHash(tb testing.TB, algo Scheduler, seed uint64) (uint64, int64) {
	tb.Helper()
	cfg := Config{
		Scheduler: algo,
		Topology:  "fattree:k=4",
		Traffic:   BernoulliTraffic(0.3, 0.12),
		Slots:     2_000,
		Seed:      seed,
	}
	runner, name, err := buildRunner(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	h := fnv.New64a()
	var buf [33]byte
	var copies int64
	runner.OnDelivery(func(d cell.Delivery) {
		le := func(off int, v uint64) {
			for i := 0; i < 8; i++ {
				buf[off+i] = byte(v >> (8 * i))
			}
		}
		le(0, uint64(d.ID))
		le(8, uint64(d.In))
		le(16, uint64(d.Out))
		le(24, uint64(d.Slot))
		buf[32] = 0
		if d.Last {
			buf[32] = 1
		}
		h.Write(buf[:])
		copies++
	})
	res := runner.Run(name)
	if res.Unstable {
		tb.Fatalf("fabric golden cell %s seed %d unstable at slot %d", algo, seed, res.UnstableAt)
	}
	fmt.Fprintf(h, "|%d|%d|%v|%.17g|%.17g|%.17g|%d",
		res.Delivered, res.Completed, res.Unstable,
		res.InputDelay.Mean, res.OutputDelay.Mean, res.AvgQueue, res.MaxQueue)
	if res.Fabric == nil {
		tb.Fatal("fabric run produced no fabric stats")
	}
	fmt.Fprintf(h, "|%s|%d|%d|%d|%d|%.17g|%d|%d",
		res.Fabric.Topology, res.Fabric.AdmittedPackets, res.Fabric.AdmittedCopies,
		res.Fabric.DeliveredCopies, res.Fabric.DroppedCopies,
		res.Fabric.HopMean, res.Fabric.HopMin, res.Fabric.HopMax)
	return h.Sum64(), copies
}

type fabricGoldenEntry struct {
	Hash   uint64 `json:"hash"`
	Copies int64  `json:"copies"`
}

// TestFabricDeliveryGolden pins the fat-tree delivery stream of each
// roster architecture to the recorded hashes.
func TestFabricDeliveryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-architecture fabric grid")
	}
	path := filepath.Join("testdata", "fabric_fattree4_golden.json")
	want := map[string]fabricGoldenEntry{}
	if !*updateGolden {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden (run with -update-golden to create): %v", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]fabricGoldenEntry{}
	for _, algo := range fabricGoldenAlgos {
		for _, seed := range fabricGoldenSeeds {
			algo, seed := algo, seed
			key := fmt.Sprintf("%s/fattree:k=4/seed=%d", algo, seed)
			t.Run(key, func(t *testing.T) {
				hash, copies := fabricDeliveryHash(t, algo, seed)
				got[key] = fabricGoldenEntry{Hash: hash, Copies: copies}
				if *updateGolden {
					return
				}
				w, ok := want[key]
				if !ok {
					t.Fatalf("no golden entry for %s", key)
				}
				if w != got[key] {
					t.Errorf("fabric delivery stream diverged: got {hash:%d copies:%d}, want {hash:%d copies:%d}",
						hash, copies, w.Hash, w.Copies)
				}
			})
		}
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
