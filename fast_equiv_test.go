package voqsim

// Fast-mode statistical equivalence: the relaxed-identity fast path
// (DESIGN.md §12) samples the same stochastic model as the bit-exact
// default, so for every architecture its delay and throughput
// estimates must agree with the exact run up to sampling error. This
// is the fast-mode analogue of TestDeliveryStreamGolden: instead of
// hashing the delivery stream (which fast mode deliberately perturbs)
// it runs the same 7-algorithm × N × seed grid twice — exact and fast
// — and requires confidence-interval overlap of the estimates.
//
// The z factor is inflated far beyond the i.i.d. value because the
// per-slot samples are autocorrelated (a backlogged slot drags its
// neighbours); the absolute floor keeps near-degenerate cells (tiny
// delays, tiny standard errors) from flagging rounding-level noise.
// The tolerances are calibrated so the recorded grid passes with
// ample margin, while a distribution bug — a biased fanout table, a
// shifted arrival rate, a dropped class of samples — shifts the means
// by many multiples of them.

import (
	"fmt"
	"testing"

	"voqsim/internal/experiment"
	"voqsim/internal/stats"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

// The equivalence grid runs at a stable operating point (load 0.6 for
// the Bernoulli cells) so the delay estimators converge within the
// grid's short runs; the golden grid's overloaded P=0.6 arrival point
// would saturate every queue and make the delay means meaningless,
// and even load 0.7 leaves eslip/wba close enough to saturation that
// runs this short are dominated by transient noise.
const fastEquivZ = 12.0

func fastEquivSlots(n int) int64 {
	if n >= 64 {
		return 4_000
	}
	return 6_000
}

// fastEquivRun executes one grid cell with the facade's exact seed
// derivation, in the exact or the fast engine mode.
func fastEquivRun(tb testing.TB, algo string, n int, seed uint64, pat traffic.Pattern, fast bool) switchsim.Results {
	tb.Helper()
	alg, err := experiment.ByName(algo)
	if err != nil {
		tb.Fatal(err)
	}
	sw := alg.New(n, xrand.New(seed).Split("switch", 0))
	r := switchsim.New(sw, pat,
		switchsim.Config{Slots: fastEquivSlots(n), Seed: seed, Fast: fast},
		xrand.New(seed).Split("traffic", 0))
	return r.Run(algo)
}

// assertFastEquivalent applies the CI-overlap criteria to one pair of
// runs.
func assertFastEquivalent(t *testing.T, exact, fast switchsim.Results) {
	t.Helper()
	if exact.Unstable != fast.Unstable {
		t.Fatalf("stability verdict diverged: exact unstable=%v, fast unstable=%v", exact.Unstable, fast.Unstable)
	}
	delays := []struct {
		name        string
		exact, fast switchsim.Summary
	}{
		{"input delay", exact.InputDelay, fast.InputDelay},
		{"output delay", exact.OutputDelay, fast.OutputDelay},
	}
	for _, d := range delays {
		if !stats.MeansCompatible(d.exact.Mean, d.exact.StdErr, d.fast.Mean, d.fast.StdErr, fastEquivZ, 0.75) {
			t.Errorf("%s diverged: exact %.4f (se %.4f), fast %.4f (se %.4f)",
				d.name, d.exact.Mean, d.exact.StdErr, d.fast.Mean, d.fast.StdErr)
		}
	}
	if diff := exact.Throughput - fast.Throughput; diff > 0.03 || diff < -0.03 {
		t.Errorf("throughput diverged: exact %.4f, fast %.4f", exact.Throughput, fast.Throughput)
	}
}

// TestFastModeEquivalence runs the full architecture grid under
// Bernoulli traffic, exact versus fast, and checks CI overlap.
func TestFastModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-architecture grid")
	}
	for _, algo := range deliveryGoldenAlgos {
		for _, n := range deliveryGoldenSizes {
			for _, seed := range deliveryGoldenSeeds {
				algo, n, seed := algo, n, seed
				t.Run(fmt.Sprintf("%s/n=%d/seed=%d", algo, n, seed), func(t *testing.T) {
					t.Parallel()
					pat := traffic.Bernoulli{P: 0.3, B: 2.0 / float64(n)}
					exact := fastEquivRun(t, algo, n, seed, pat, false)
					fast := fastEquivRun(t, algo, n, seed, pat, true)
					assertFastEquivalent(t, exact, fast)
				})
			}
		}
	}
}

// TestFastModeEquivalenceFamilies covers the remaining fast-source
// families (uniform, burst, mixed) on the paper's algorithm, so every
// fast sampler — alias binomial, Floyd subsets and geometric burst
// lengths — is exercised against its exact counterpart.
func TestFastModeEquivalenceFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-family grid")
	}
	const n = 16
	patterns := []traffic.Pattern{
		traffic.Uniform{P: 0.2, MaxFanout: 4},
		traffic.Burst{EOff: 40, EOn: 10, B: 2.0 / n},
		traffic.Mixed{P: 0.25, MulticastFrac: 0.5, MaxFanout: 4},
	}
	for _, pat := range patterns {
		for _, seed := range deliveryGoldenSeeds {
			pat, seed := pat, seed
			t.Run(fmt.Sprintf("%s/seed=%d", pat.String(), seed), func(t *testing.T) {
				t.Parallel()
				exact := fastEquivRun(t, "fifoms", n, seed, pat, false)
				fast := fastEquivRun(t, "fifoms", n, seed, pat, true)
				assertFastEquivalent(t, exact, fast)
			})
		}
	}
}
