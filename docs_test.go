package voqsim

// TestDocLinks keeps the Markdown documentation navigable: every
// relative link in the repo-root and docs/ *.md files must point at a
// file that exists (resolved relative to the linking file's own
// directory, as GitHub renders it), and every fragment must match a
// heading's GitHub-style anchor in the target file. External links
// (http/https/mailto) are not fetched. CI runs this in the docs job.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found at the repo root")
	}
	docFiles, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docFiles) == 0 {
		t.Fatal("no markdown files found under docs/")
	}
	files = append(files, docFiles...)
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range extractLinks(string(body)) {
			checkLink(t, file, target)
		}
	}
}

// extractLinks returns the link targets of doc, ignoring fenced code
// blocks (ASCII diagrams and shell snippets are not hypertext).
func extractLinks(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}

func checkLink(t *testing.T, file, target string) {
	t.Helper()
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") {
		return
	}
	path, frag, _ := strings.Cut(target, "#")
	if path == "" {
		path = file // intra-document fragment
	} else {
		// Relative links resolve against the linking file's directory,
		// exactly as GitHub renders them (docs/OPERATIONS.md links to
		// ../README.md, not README.md).
		path = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("%s: broken link %q: %v", file, target, err)
		return
	}
	if frag == "" {
		return
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Errorf("%s: link %q: %v", file, target, err)
		return
	}
	for _, a := range headingAnchors(string(body)) {
		if a == frag {
			return
		}
	}
	t.Errorf("%s: link %q: no heading in %s has anchor #%s", file, target, path, frag)
}

// headingAnchors returns the GitHub-style anchor of every Markdown
// heading in doc.
func headingAnchors(doc string) []string {
	var anchors []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue
		}
		anchors = append(anchors, anchorize(strings.TrimSpace(text)))
	}
	return anchors
}

// anchorize mirrors GitHub's heading-to-anchor rule: lowercase, drop
// everything but letters, digits, spaces, hyphens and underscores,
// then turn spaces into hyphens.
func anchorize(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
