package voqsim

// Delivery-stream goldens: the bit-identity contract of the slot
// pipeline. For every (algorithm, N, seed) cell of the grid below the
// test hashes the complete delivery stream — every copy's packet ID,
// input, output, slot and Last flag, in delivery order — plus the
// headline results, and compares against hashes recorded from the
// pre-arena simulator (PR 5). Any change to queue storage, traffic
// generation or the engine loop that perturbs even one delivery shows
// up as a hash mismatch, which is exactly the discipline the PR 1
// kernel differential and the PR 4 resume grids established.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test -run TestDeliveryStreamGolden -update-golden .

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"voqsim/internal/cell"
	"voqsim/internal/experiment"
	"voqsim/internal/switchsim"
	"voqsim/internal/traffic"
	"voqsim/internal/xrand"
)

// The grid mirrors the resume-equals-straight-run roster in
// internal/switchsim: the seven snapshot-capable architectures.
var deliveryGoldenAlgos = []string{"fifoms", "pim", "islip", "eslip", "wba", "lqfms", "2drr"}

var deliveryGoldenSizes = []int{4, 16, 64}

var deliveryGoldenSeeds = []uint64{1, 42, 0xfeedface}

func deliveryGoldenSlots(n int) int64 {
	if n >= 64 {
		return 1_500
	}
	return 4_000
}

// deliveryHash runs one grid cell and returns the FNV-64a hash of its
// delivery stream together with the delivered-copy count.
func deliveryHash(tb testing.TB, algo string, n int, seed uint64) (uint64, int64) {
	tb.Helper()
	alg, err := experiment.ByName(algo)
	if err != nil {
		tb.Fatal(err)
	}
	pat := traffic.Bernoulli{P: 0.6, B: 2.0 / float64(n)}
	sw := alg.New(n, xrand.New(seed).Split("switch", 0))
	r := switchsim.New(sw, pat,
		switchsim.Config{Slots: deliveryGoldenSlots(n), Seed: seed},
		xrand.New(seed).Split("traffic", 0))
	h := fnv.New64a()
	var buf [33]byte
	var copies int64
	r.OnDelivery(func(d cell.Delivery) {
		le := func(off int, v uint64) {
			for i := 0; i < 8; i++ {
				buf[off+i] = byte(v >> (8 * i))
			}
		}
		le(0, uint64(d.ID))
		le(8, uint64(d.In))
		le(16, uint64(d.Out))
		le(24, uint64(d.Slot))
		buf[32] = 0
		if d.Last {
			buf[32] = 1
		}
		h.Write(buf[:])
		copies++
	})
	res := r.Run(algo)
	// Fold the headline results in too, so statistics changes that do
	// not touch the stream itself are still caught.
	fmt.Fprintf(h, "|%d|%d|%v|%.17g|%.17g|%.17g|%d",
		res.Delivered, res.Completed, res.Unstable,
		res.InputDelay.Mean, res.OutputDelay.Mean, res.AvgQueue, res.MaxQueue)
	return h.Sum64(), copies
}

type deliveryGoldenEntry struct {
	Hash   uint64 `json:"hash"`
	Copies int64  `json:"copies"`
}

// TestDeliveryStreamGolden pins the delivery stream of every roster
// architecture to the recorded hashes.
func TestDeliveryStreamGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-architecture grid")
	}
	path := filepath.Join("testdata", "delivery_golden.json")
	want := map[string]deliveryGoldenEntry{}
	if !*updateGolden {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden (run with -update-golden to create): %v", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]deliveryGoldenEntry{}
	for _, algo := range deliveryGoldenAlgos {
		for _, n := range deliveryGoldenSizes {
			for _, seed := range deliveryGoldenSeeds {
				algo, n, seed := algo, n, seed
				key := fmt.Sprintf("%s/n=%d/seed=%d", algo, n, seed)
				t.Run(key, func(t *testing.T) {
					hash, copies := deliveryHash(t, algo, n, seed)
					got[key] = deliveryGoldenEntry{Hash: hash, Copies: copies}
					if *updateGolden {
						return
					}
					w, ok := want[key]
					if !ok {
						t.Fatalf("no golden entry for %s", key)
					}
					if w != got[key] {
						t.Errorf("delivery stream diverged from the pre-arena simulator: got {hash:%d copies:%d}, want {hash:%d copies:%d}",
							hash, copies, w.Hash, w.Copies)
					}
				})
			}
		}
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
