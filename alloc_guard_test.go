package voqsim

import "testing"

// TestPreprocessZeroAllocs guards the arrival fast path: with the
// observability layer detached (the default), preprocessing an
// arriving multicast packet into its data and address cells must not
// allocate. The pooled free lists and the nil-observer check are what
// keep this at zero; see also the matching kernel guard in
// internal/core.
func TestPreprocessZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	res := testing.Benchmark(BenchmarkPreprocess)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("Arrive with observability disabled: %d allocs/op (%d B/op), want 0",
			a, res.AllocedBytesPerOp())
	}
}
