package voqsim

// Golden regression test for voqsweep's rendered outputs, mirroring
// the 4x4 trace golden in internal/report: a pinned seed on a pinned
// 4x4 grid must render byte-identical text and CSV until someone
// deliberately changes the engine or the formatters. Regenerate with:
//
//	go test -run TestCLIVoqsweepGolden -update-golden .
//
// The goldens embed full-precision floats ('g', -1), so they pin the
// simulation itself, not just the formatting. Go's spec keeps this
// deterministic per platform; architectures that fuse multiply-adds
// could in principle diverge, in which case the goldens (like the
// checked-in BENCH numbers) are authoritative for amd64 CI.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata goldens from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with -update-golden if intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestCLIVoqsweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	out := runTool(t, "voqsweep", "",
		"-n", "4", "-seed", "42", "-slots", "2000",
		"-loads", "0.3,0.6", "-algos", "fifoms,oqfifo",
		"-traffic", "bernoulli", "-b", "0.3",
		"-metrics", "in_delay,avg_queue,throughput",
		"-check", "-csv", csvPath)
	// The checked run's verdict line is part of the pinned surface: the
	// golden fails if the sweep ever stops passing the checker.
	if !strings.Contains(out, "check: all points passed") {
		t.Fatalf("missing checker verdict:\n%s", out)
	}
	checkGolden(t, "voqsweep_4x4.golden", out)

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))
}
