package voqsim

// Golden regression test for voqsweep's rendered outputs, mirroring
// the 4x4 trace golden in internal/report: a pinned seed on a pinned
// 4x4 grid must render byte-identical text and CSV until someone
// deliberately changes the engine or the formatters. Regenerate with:
//
//	go test -run TestCLIVoqsweepGolden -update-golden .
//
// The goldens embed full-precision floats ('g', -1), so they pin the
// simulation itself, not just the formatting. Go's spec keeps this
// deterministic per platform; architectures that fuse multiply-adds
// could in principle diverge, in which case the goldens (like the
// checked-in BENCH numbers) are authoritative for amd64 CI.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata goldens from current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with -update-golden if intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// goldenSweepArgs returns the pinned 4x4 sweep invocation, writing the
// CSV export to csvPath; extra flags are appended.
func goldenSweepArgs(csvPath string, extra ...string) []string {
	args := []string{
		"-n", "4", "-seed", "42", "-slots", "2000",
		"-loads", "0.3,0.6", "-algos", "fifoms,oqfifo",
		"-traffic", "bernoulli", "-b", "0.3",
		"-metrics", "in_delay,avg_queue,throughput",
		"-check", "-csv", csvPath,
	}
	return append(args, extra...)
}

func TestCLIVoqsweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	out := runTool(t, "voqsweep", "", goldenSweepArgs(csvPath)...)
	// The checked run's verdict line is part of the pinned surface: the
	// golden fails if the sweep ever stops passing the checker.
	if !strings.Contains(out, "check: all points passed") {
		t.Fatalf("missing checker verdict:\n%s", out)
	}
	checkGolden(t, "voqsweep_4x4.golden", out)

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))
}

// TestCLIVoqsweepResumeGolden pins the -resume-dir protocol against
// the same goldens: a resumable sweep, and a sweep resumed mid-grid
// after losing a finished point, must reproduce the uninterrupted
// table byte for byte.
func TestCLIVoqsweepResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "ckpt")

	// Leg 1: a fresh resumable run matches the pinned goldens exactly —
	// checkpointing is passive.
	csvPath := filepath.Join(tmp, "sweep1.csv")
	out := runTool(t, "voqsweep", "", goldenSweepArgs(csvPath, "-resume-dir", dir)...)
	checkGolden(t, "voqsweep_4x4.golden", out)
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))

	// Leg 2: drop one finished point and re-run with the same directory.
	// The sweep reloads three points from disk, re-simulates the lost
	// one, and still renders the identical goldens.
	done, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("checkpoint dir holds %d finished points, want 4", len(done))
	}
	if err := os.Remove(done[0]); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(tmp, "sweep2.csv")
	out = runTool(t, "voqsweep", "", goldenSweepArgs(csvPath, "-resume-dir", dir)...)
	checkGolden(t, "voqsweep_4x4.golden", out)
	csv, err = os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "voqsweep_4x4_csv.golden", string(csv))
}
