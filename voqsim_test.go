package voqsim

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRunFIFOMS(t *testing.T) {
	rep, err := Run(Config{
		Ports:     8,
		Scheduler: FIFOMS,
		Traffic:   BernoulliTraffic(0.3, 0.25),
		Slots:     10_000,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unstable {
		t.Fatal("moderate load unstable")
	}
	if rep.AvgInputDelay < 1 || rep.AvgInputDelay > 10 {
		t.Fatalf("implausible delay %v", rep.AvgInputDelay)
	}
	if rep.CompletedPackets == 0 || rep.Throughput <= 0 {
		t.Fatalf("no work measured: %+v", rep)
	}
	if rep.Load != 0.3*0.25*8 {
		t.Fatalf("Load = %v", rep.Load)
	}
	if !strings.Contains(rep.String(), "fifoms") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Scheduler: FIFOMS, Traffic: BernoulliTraffic(0.1, 0.1)}); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := Run(Config{Ports: 8, Scheduler: "bogus", Traffic: BernoulliTraffic(0.1, 0.1)}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if _, err := Run(Config{Ports: 8, Scheduler: FIFOMS}); err == nil {
		t.Fatal("empty traffic accepted")
	}
	if _, err := Run(Config{Ports: 8, Scheduler: FIFOMS, Traffic: BernoulliTrafficAtLoad(5, 0.2)}); err == nil {
		t.Fatal("unreachable load accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{Ports: 8, Scheduler: FIFOMS, Traffic: UniformTraffic(0.4, 4), Slots: 5000, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different reports:\n%+v\n%+v", a, b)
	}
}

// TestRunParallelIdentity pins the facade's multicore contract: a
// fabric run with Parallel workers returns the same report as the
// sequential run, and Parallel without a Topology is a config error.
func TestRunParallelIdentity(t *testing.T) {
	cfg := Config{
		Scheduler: FIFOMS,
		Topology:  "fattree:k=4",
		Traffic:   BernoulliTraffic(0.3, 0.12),
		Slots:     2000,
		Seed:      7,
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		cfg.Parallel = w
		par, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("Parallel=%d changed the report:\n%+v\n%+v", w, par, seq)
		}
	}
	cfg = Config{Ports: 8, Scheduler: FIFOMS, Traffic: BernoulliTraffic(0.3, 0.25), Slots: 100, Parallel: 4}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Topology") {
		t.Fatalf("Parallel without Topology accepted (err=%v)", err)
	}
}

func TestTrafficAtLoadResolves(t *testing.T) {
	tr := BernoulliTrafficAtLoad(0.8, 0.2)
	load, err := tr.EffectiveLoad(16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-0.8) > 1e-12 {
		t.Fatalf("EffectiveLoad = %v", load)
	}
	if !strings.Contains(tr.String(), "bernoulli") {
		t.Fatalf("String = %q", tr.String())
	}
	if got := (Traffic{}).String(); got != "traffic(unspecified)" {
		t.Fatalf("empty Traffic String = %q", got)
	}
}

func TestAllTrafficConstructors(t *testing.T) {
	for name, tr := range map[string]Traffic{
		"bernoulli":     BernoulliTraffic(0.5, 0.2),
		"bernoulliLoad": BernoulliTrafficAtLoad(0.5, 0.2),
		"uniform":       UniformTraffic(0.5, 4),
		"uniformLoad":   UniformTrafficAtLoad(0.5, 4),
		"burst":         BurstTraffic(240, 16, 0.5), // load 0.5*16*16/256 = 0.5
		"burstLoad":     BurstTrafficAtLoad(0.5, 0.5, 16),
		"mixed":         MixedTraffic(0.5, 0.5, 8),
		"hotspot":       HotspotTraffic(0.1, 0.5, 0.1, 3), // hot load 0.8
		"hotspotLoad":   HotspotTrafficAtLoad(0.8, 4),
		"diagonal":      DiagonalTraffic(0.7),
	} {
		rep, err := Run(Config{Ports: 16, Scheduler: OQFIFO, Traffic: tr, Slots: 2000, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.CompletedPackets == 0 {
			t.Fatalf("%s: no packets", name)
		}
	}
}

func TestCompareSharesTraffic(t *testing.T) {
	cfg := Config{Ports: 8, Traffic: BernoulliTraffic(0.3, 0.25), Slots: 5000, Seed: 9}
	reps, err := Compare(cfg, FIFOMS, TATRA, ISLIP, OQFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("%d reports", len(reps))
	}
	for i, want := range []Scheduler{FIFOMS, TATRA, ISLIP, OQFIFO} {
		if reps[i].Scheduler != want {
			t.Fatalf("report %d is %s, want %s", i, reps[i].Scheduler, want)
		}
		// Identical seed and traffic family: all reports see the same
		// offered load.
		if reps[i].Load != reps[0].Load {
			t.Fatalf("loads differ: %v vs %v", reps[i].Load, reps[0].Load)
		}
	}
	if _, err := Compare(cfg); err == nil {
		t.Fatal("empty scheduler list accepted")
	}
}

func TestSchedulersListed(t *testing.T) {
	all := Schedulers()
	if len(all) < 6 {
		t.Fatalf("only %d schedulers", len(all))
	}
	seen := map[Scheduler]bool{}
	for _, s := range all {
		seen[s] = true
	}
	for _, want := range []Scheduler{FIFOMS, TATRA, ISLIP, OQFIFO, PIM, WBA} {
		if !seen[want] {
			t.Fatalf("missing scheduler %s in %v", want, all)
		}
	}
}

func TestFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sweep")
	}
	res, err := Figure("fig5", FigureOptions{Slots: 3000, Seed: 7, Plots: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fig5" || !strings.Contains(res.Text, "fifoms") {
		t.Fatalf("figure text:\n%s", res.Text)
	}
	if len(res.Loads) == 0 {
		t.Fatal("no loads")
	}
	if _, ok := res.Series["fifoms/rounds"]; !ok {
		t.Fatalf("series keys: %v", keys(res.Series))
	}
	if !strings.Contains(res.Text, "|") {
		t.Fatal("plots requested but not rendered")
	}
}

func keys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFigureUnknown(t *testing.T) {
	if _, err := Figure("fig99", FigureOptions{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureNames(t *testing.T) {
	names := FigureNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "mixed"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("FigureNames missing %s: %v", want, names)
		}
	}
}
