// Side-by-side comparison: every scheduler in the library under the
// same traffic, seed for seed — the quickest way to see the paper's
// headline result (and what the extension baselines add to it).
//
// Run with:
//
//	go run ./examples/comparison [load]
//
// The optional argument sets the effective load (default 0.7).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"voqsim"
)

func main() {
	load := 0.7
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil || v <= 0 {
			log.Fatalf("bad load %q", os.Args[1])
		}
		load = v
	}

	cfg := voqsim.Config{
		Ports:   16,
		Traffic: voqsim.BernoulliTrafficAtLoad(load, 0.2),
		Slots:   200_000,
		Seed:    2004,
	}

	schedulers := []voqsim.Scheduler{
		voqsim.FIFOMS, voqsim.TATRA, voqsim.ISLIP, voqsim.OQFIFO,
		voqsim.PIM, voqsim.WBA, voqsim.FIFOMSNoSplit,
	}
	reports, err := voqsim.Compare(cfg, schedulers...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("All schedulers, 16x16, Bernoulli b=0.2, load %.2f, %d slots\n\n", load, cfg.Slots)
	fmt.Printf("%-15s %10s %10s %10s %9s %8s %9s\n",
		"scheduler", "in-delay", "out-delay", "avg queue", "max q", "rounds", "state")
	for _, r := range reports {
		state := "stable"
		if r.Unstable {
			state = "SAT"
		}
		rounds := "-"
		if r.MeanRounds > 0 {
			rounds = fmt.Sprintf("%.2f", r.MeanRounds)
		}
		fmt.Printf("%-15s %10.2f %10.2f %10.3f %9d %8s %9s\n",
			r.Scheduler, r.AvgInputDelay, r.AvgOutputDelay, r.AvgQueueSize,
			r.MaxQueueSize, rounds, state)
	}

	fmt.Println()
	fmt.Println("Reading the table (paper, Section V): FIFOMS should track OQFIFO's")
	fmt.Println("delay with the smallest queues; TATRA/WBA suffer HOL blocking at high")
	fmt.Println("load; iSLIP/PIM pay the multicast-as-unicast penalty in both delay and")
	fmt.Println("buffer space; the no-split ablation shows why fanout splitting matters.")
}
