// IPTV head-end: the workload the paper's introduction motivates —
// a router fanning live video channels out to many subscriber ports,
// where every duplicated copy wastes bandwidth and every slot of
// multicast latency is visible to viewers.
//
// The example models a 16-port distribution switch carrying popular
// channels (large fanout, bursty group-joins) and compares the
// multicast-aware FIFOMS against iSLIP, which forwards each channel
// packet as independent unicast copies — the strategy a unicast-only
// scheduler forces on an IPTV operator. It prints the latency a
// subscriber sees and the buffer memory the line card needs.
//
// Run with:
//
//	go run ./examples/iptv
package main

import (
	"fmt"
	"log"

	"voqsim"
)

func main() {
	const ports = 16

	// A channel burst: when a popular event starts, packets for the
	// channel arrive back to back (mean burst 16 slots) addressed to
	// half the subscriber ports. Between events the feed is quiet.
	// Total offered load: 60% of output capacity.
	channelFeed := voqsim.BurstTrafficAtLoad(0.6, 0.5, 16)

	fmt.Println("IPTV distribution, 16x16 switch, bursty channel feeds (load 0.6)")
	fmt.Println()
	fmt.Printf("%-10s %18s %18s %14s %12s\n",
		"scheduler", "viewer delay", "sender done", "buffer/port", "stable?")

	reports, err := voqsim.Compare(voqsim.Config{
		Ports:   ports,
		Traffic: channelFeed,
		Slots:   200_000,
		Seed:    7,
	}, voqsim.FIFOMS, voqsim.ISLIP, voqsim.OQFIFO)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range reports {
		stable := "yes"
		if r.Unstable {
			stable = "NO"
		}
		fmt.Printf("%-10s %13.1f slots %13.1f slots %8.1f cells %12s\n",
			r.Scheduler, r.AvgOutputDelay, r.AvgInputDelay, r.AvgQueueSize, stable)
	}

	fmt.Println()
	fifoms, islip := reports[0], reports[1]
	if !fifoms.Unstable && (islip.Unstable || islip.AvgOutputDelay > fifoms.AvgOutputDelay) {
		factor := islip.AvgOutputDelay / fifoms.AvgOutputDelay
		fmt.Printf("FIFOMS delivers each channel copy %.1fx faster than unicast-copy iSLIP\n", factor)
		fmt.Printf("because one queued data cell feeds all subscriber ports at once\n")
		fmt.Printf("(buffer per port: %.1f vs %.1f cells).\n", fifoms.AvgQueueSize, islip.AvgQueueSize)
	} else {
		fmt.Println("unexpected: iSLIP kept up with FIFOMS on this workload")
	}
}
