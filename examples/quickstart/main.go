// Quickstart: simulate a 16x16 multicast VOQ switch running FIFOMS
// under the paper's Bernoulli traffic and print the four statistics of
// the evaluation (Section V).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"voqsim"
)

func main() {
	report, err := voqsim.Run(voqsim.Config{
		Ports:     16,
		Scheduler: voqsim.FIFOMS,
		// Bernoulli traffic with b = 0.2: every arriving packet
		// addresses each of the 16 outputs with probability 0.2 (mean
		// fanout 3.2). p = 0.25 puts the effective load at
		// p*b*N = 0.8 of output capacity.
		Traffic: voqsim.BernoulliTraffic(0.25, 0.2),
		Slots:   200_000,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIFOMS on a 16x16 multicast VOQ switch, Bernoulli b=0.2, load 0.8")
	fmt.Printf("  average input oriented delay:  %.2f slots (sender done)\n", report.AvgInputDelay)
	fmt.Printf("  average output oriented delay: %.2f slots (per receiver)\n", report.AvgOutputDelay)
	fmt.Printf("  average queue size:            %.2f data cells per input\n", report.AvgQueueSize)
	fmt.Printf("  maximum queue size:            %d data cells\n", report.MaxQueueSize)
	fmt.Printf("  throughput:                    %.3f copies/output/slot\n", report.Throughput)
	fmt.Printf("  scheduler rounds per slot:     %.2f (of at most %d)\n", report.MeanRounds, report.Ports)
	if report.Unstable {
		fmt.Println("  NOTE: the switch could not sustain this load")
	}
}
