// Hardware sizing: Section IV of the paper argues FIFOMS is easy to
// implement with per-port comparator trees. This example runs the
// scaling study behind that claim and turns the measured convergence
// rounds into concrete scheduling budgets: at what line rate can a
// switch of each size still schedule within one slot?
//
// A 64-byte cell at 100 Gb/s lasts 5.12 ns; the scheduler must finish
// its rounds inside that window (or the slot time of whatever rate the
// designer targets).
//
// Run with:
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"

	"voqsim/internal/experiment"
	"voqsim/internal/hw"
)

func main() {
	points, err := experiment.Scaling(experiment.ScalingConfig{
		Sizes: []int{4, 8, 16, 32, 64},
		Load:  0.7,
		Slots: 60_000,
		Seed:  2004,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIFOMS hardware scheduling budget (load 0.7, Bernoulli b=0.2)")
	fmt.Printf("comparator stage %d ps, feedback %d ps per round\n\n",
		hw.DefaultLatency.ComparatorDelayPs, hw.DefaultLatency.FeedbackDelayPs)
	fmt.Printf("%4s %12s %12s %14s %16s %18s\n",
		"N", "mean rounds", "tree depth", "mean ps/slot", "worst-case ps", "max rate @64B")
	for _, p := range points {
		worst := float64(p.N) * float64(hw.DefaultLatency.RoundLatencyPs(p.N))
		// Highest line rate at which the mean scheduling latency still
		// fits in one 64-byte cell slot: rate = 512 bits / slot time.
		slotNs := p.TreeSlotPs / 1000
		maxGbps := 512 / slotNs
		fmt.Printf("%4d %12.3f %12d %14.0f %16.0f %15.0f Gb/s\n",
			p.N, p.MeanRounds, hw.TreeDepth(p.N), p.TreeSlotPs, worst, maxGbps)
	}

	fmt.Println()
	if violations := experiment.CheckScaling(points); len(violations) == 0 {
		fmt.Println("Section IV.C holds: rounds stay far below N and grow sub-linearly,")
		fmt.Println("so the parallel-comparator scheduler keeps up with per-slot budgets")
		fmt.Println("even as the switch grows (the serial alternative would not).")
	} else {
		fmt.Println("Scaling claims violated:")
		for _, v := range violations {
			fmt.Println(" -", v)
		}
	}
}
