// Datacenter top-of-rack: mixed unicast and multicast traffic — RPC
// flows (unicast) interleaved with replication and pub/sub fan-out
// (multicast) — the regime the paper notes is hardest for single-queue
// multicast schedulers like TATRA.
//
// The example sweeps the offered load upward and reports, for each
// scheduler, the highest load it sustains (binary search on the
// stability flag) and its latency at a common operating point.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"voqsim"
)

const (
	ports     = 16
	mcFrac    = 0.5 // half the packets are multicast
	maxFanout = 8
	slots     = 60_000
)

// mixedAt builds the rack workload at a target effective load.
func mixedAt(load float64) voqsim.Traffic {
	mean := mcFrac*(2+float64(maxFanout))/2 + (1 - mcFrac) // 3.0 copies/packet
	return voqsim.MixedTraffic(load/mean, mcFrac, maxFanout)
}

// sustainable reports whether the scheduler holds the load.
func sustainable(s voqsim.Scheduler, load float64) bool {
	rep, err := voqsim.Run(voqsim.Config{
		Ports: ports, Scheduler: s, Traffic: mixedAt(load), Slots: slots, Seed: 11,
	})
	if err != nil {
		return false
	}
	return !rep.Unstable
}

// maxLoad binary-searches the saturation throughput to ~2% precision.
func maxLoad(s voqsim.Scheduler) float64 {
	lo, hi := 0.05, 1.0
	if !sustainable(s, lo) {
		return 0
	}
	for hi-lo > 0.02 {
		mid := (lo + hi) / 2
		if sustainable(s, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func main() {
	fmt.Printf("Top-of-rack switch, %d ports, %.0f%% multicast (fanout <= %d)\n\n",
		ports, mcFrac*100, maxFanout)
	fmt.Printf("%-10s %16s %22s %22s\n", "scheduler", "max load", "delay @ load 0.5", "buffer @ load 0.5")

	for _, s := range []voqsim.Scheduler{voqsim.FIFOMS, voqsim.TATRA, voqsim.ISLIP, voqsim.WBA, voqsim.OQFIFO} {
		sat := maxLoad(s)
		rep, err := voqsim.Run(voqsim.Config{
			Ports: ports, Scheduler: s, Traffic: mixedAt(0.5), Slots: slots, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		delay := fmt.Sprintf("%.2f slots", rep.AvgInputDelay)
		if rep.Unstable {
			delay = "saturated"
		}
		fmt.Printf("%-10s %15.0f%% %22s %16.2f cells\n", s, sat*100, delay, rep.AvgQueueSize)
	}

	fmt.Println()
	fmt.Println("Expected shape (paper, Sections I and V): the single-FIFO multicast")
	fmt.Println("schedulers (TATRA, WBA) lose throughput to HOL blocking under the")
	fmt.Println("unicast share; unicast-copy iSLIP pays a delay penalty on the multicast")
	fmt.Println("share; FIFOMS sustains the highest load of the input-queued designs")
	fmt.Println("with the smallest buffers.")
}
