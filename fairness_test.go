package voqsim

// Fairness integration tests: the paper's starvation-freedom claim
// (Section VI) measured with Jain's index over per-input service under
// saturating symmetric demand. A fair scheduler gives every input an
// equal share; a starving one concentrates service.

import (
	"testing"

	"voqsim/internal/cell"
	"voqsim/internal/core"
	"voqsim/internal/destset"
	"voqsim/internal/sched/islip"
	"voqsim/internal/stats"
	"voqsim/internal/switchsim"
	"voqsim/internal/wba"
	"voqsim/internal/xrand"
)

// saturatedShares runs the switch with every input continuously
// backlogged for every output — one full-fanout multicast packet per
// input per slot while the backlog is shallow, respecting the queue
// structure's one-arrival-per-slot rule — and returns the per-input
// delivered-copy counts over the second half.
func saturatedShares(t *testing.T, sw switchsim.Switch, slots int64) []int64 {
	t.Helper()
	n := sw.Ports()
	all := make([]int, n)
	for out := 0; out < n; out++ {
		all[out] = out
	}
	shares := make([]int64, n)
	var id cell.PacketID
	for slot := int64(0); slot < slots; slot++ {
		if sw.BufferedCells() < int64(n*n*4) {
			for in := 0; in < n; in++ {
				id++
				sw.Arrive(&cell.Packet{ID: id, Input: in, Arrival: slot,
					Dests: destset.FromMembers(n, all...)})
			}
		}
		sw.Step(slot, func(d cell.Delivery) {
			if slot >= slots/2 {
				shares[d.In]++
			}
		})
	}
	return shares
}

func TestSaturationFairnessAcrossInputs(t *testing.T) {
	const n, slots = 8, 6000
	for name, sw := range map[string]switchsim.Switch{
		"fifoms": core.NewSwitch(n, &core.FIFOMS{}, xrand.New(31)),
		"islip":  core.NewSwitch(n, islip.New(), xrand.New(31)),
		"wba":    wba.New(n, xrand.New(31)),
	} {
		shares := saturatedShares(t, sw, slots)
		j := stats.JainIndexInts(shares)
		if j < 0.99 {
			t.Errorf("%s: Jain index %.4f under symmetric saturation (shares %v)", name, j, shares)
		}
		var total int64
		for _, s := range shares {
			total += s
		}
		// Full backlog must keep every output busy: n copies per slot
		// over the measured half.
		if want := int64(n) * (slots - slots/2); total < want*95/100 {
			t.Errorf("%s: served %d of %d possible copies at saturation", name, total, want)
		}
	}
}

func TestFIFOMSNoStarvationUnderAsymmetricDemand(t *testing.T) {
	// One input fights fifteen: input 0 sends only to output 0, which
	// every other input also wants. Time stamps guarantee input 0 a
	// proportional share (1/n of output 0), never zero.
	const n, slots = 8, 8000
	sw := core.NewSwitch(n, &core.FIFOMS{}, xrand.New(33))
	var id cell.PacketID
	served := make([]int64, n)
	for slot := int64(0); slot < slots; slot++ {
		for in := 0; in < n; in++ {
			id++
			sw.Arrive(&cell.Packet{ID: id, Input: in, Arrival: slot,
				Dests: destset.FromMembers(n, 0)})
		}
		sw.Step(slot, func(d cell.Delivery) {
			if slot >= slots/2 {
				served[d.In]++
			}
		})
	}
	j := stats.JainIndexInts(served)
	if j < 0.98 {
		t.Fatalf("output-0 service unfair: J=%.4f shares %v", j, served)
	}
	for in, s := range served {
		if s == 0 {
			t.Fatalf("input %d starved at output 0", in)
		}
	}
}
