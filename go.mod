module voqsim

go 1.22
